package planetest

import (
	"errors"
	"math/rand"
	"testing"

	"neurolpm/internal/core"
	"neurolpm/internal/fault"
	"neurolpm/internal/lpm"
	"neurolpm/internal/plane"
	"neurolpm/internal/shard"
	"neurolpm/internal/tier"
)

// TestStackMetamorphicTiered runs the matrix-equality property of
// TestStackMetamorphic on the tiered configuration (DESIGN.md §16) through a
// full placement lifecycle — all-cold start, burst promotion, aggressive
// sketch demotion — with a fault storm (100% retrain failure over pending
// inserts) in the middle. The property is unchanged: every (topology, stack)
// combo answers every key identically, no matter where placement currently
// holds each bucket or which updates are stuck in delta buffers.
func TestStackMetamorphicTiered(t *testing.T) {
	const width = 32
	rules := RandomRules(width, 600, 71)
	rs, err := lpm.NewRuleSet(width, rules)
	if err != nil {
		t.Fatal(err)
	}
	// DemoteBelow at max means every rebalance demotes whatever the sketch
	// missed, so placement churns on each pass instead of settling.
	tcfg := tier.Config{Enabled: true, DemoteBelow: ^uint32(0)}
	eng, err := core.Build(rs, core.Config{BucketSize: 8, Model: QuickModel(), Tier: tcfg})
	if err != nil {
		t.Fatal(err)
	}
	in := fault.NewInjector(71)
	u, err := shard.BuildUpdatable(rs, core.Config{BucketSize: 8, Model: QuickModel(), Tier: tcfg, Fault: in.Hook()}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	u.EnableCache(64 << 10)
	fx := NewFixture(width, eng, u)

	demoteAll := func() {
		eng.TierStore().DemoteAll()
		for i := 0; i < u.Shards(); i++ {
			u.Engine(i).TierStore().DemoteAll()
		}
	}
	rebalance := func() {
		eng.RebalanceTier()
		u.RebalanceTiers()
	}
	rng := rand.New(rand.NewSource(73))
	ks := Corpus(width, rules, 256, rng)
	combos := plane.Combos()

	equal := func(stage string, cs []plane.Combo) {
		t.Helper()
		ref := fx.LookupBatch(cs[0], ks)
		for _, cb := range cs {
			batch := fx.LookupBatch(cb, ks)
			for i, k := range ks {
				if batch[i] != ref[i] {
					t.Fatalf("%s: %s: batch key %v: %+v, %s got %+v", stage, cb, k, batch[i], cs[0], ref[i])
				}
				if got := fx.Lookup(cb, k); got != ref[i] {
					t.Fatalf("%s: %s: single key %v: %+v, batch %+v", stage, cb, k, got, ref[i])
				}
			}
		}
	}

	demoteAll()
	equal("all-cold", combos)

	// Burst promotion from the traffic above, then another full pass over
	// the freshly mixed placement.
	rebalance()
	equal("post-rebalance", combos)

	// Fault storm: pending inserts that cannot commit (100% retrain
	// failure). The pending rules are visible through the sharded delta
	// overlay only, so the equality check narrows to the sharded half of
	// the matrix — which must stay self-consistent while serving from
	// mixed tiers with updates stuck in delta buffers.
	in.FailProb(fault.SiteRetrain, 1)
	var accepted []lpm.Rule
	for _, r := range RandomRules(width, 24, 99) {
		if rs.Find(r.Prefix, r.Len) != lpm.NoMatch {
			continue
		}
		if err := u.Insert(r); err != nil {
			if errors.Is(err, core.ErrDeltaFull) {
				continue
			}
			t.Fatalf("insert %v: %v", r, err)
		}
		accepted = append(accepted, r)
	}
	if len(accepted) == 0 {
		t.Fatal("no pending inserts landed for the storm phase")
	}
	if err := u.CommitAll(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("storm commit outcome: %v", err)
	}
	demoteAll()
	rebalance()
	equal("storm", ShardedCombos())

	// Recovery: storm lifted, everything commits, and the rebuilt shard
	// engines (which inherit the tier config) must agree with a trie
	// oracle over base+accepted across another placement churn.
	in.Clear(fault.SiteRetrain)
	if err := u.CommitAll(); err != nil {
		t.Fatalf("recovery commit: %v", err)
	}
	merged, err := lpm.NewRuleSet(width, append(append([]lpm.Rule(nil), rules...), accepted...))
	if err != nil {
		t.Fatal(err)
	}
	demoteAll()
	rebalance()
	oracle := lpm.NewTrieMatcher(merged)
	if err := fx.CheckCombos(ShardedCombos(), oracle, Corpus(width, merged.Rules, 256, rng)); err != nil {
		t.Fatalf("post-recovery: %v", err)
	}
}
