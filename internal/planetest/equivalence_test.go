package planetest

import (
	"testing"

	"neurolpm/internal/cachesim"
	"neurolpm/internal/core"
	"neurolpm/internal/keys"
	"neurolpm/internal/lcache"
	"neurolpm/internal/lpm"
	"neurolpm/internal/plane"
	"neurolpm/internal/shard"
	"neurolpm/internal/workload"
)

// TestLookupEntryPointsEquivalent drives EVERY exported lookup entry point —
// single-key and batch, core and shard, reference and compiled, cached and
// uncached — over one shared workload-calibrated corpus and asserts each
// answers exactly what the trie oracle answers, misses included. This is the
// table-driven face of the equivalence contract the fuzz target probes
// adversarially: adding a lookup variant means adding a row here, not a new
// harness.
func TestLookupEntryPointsEquivalent(t *testing.T) {
	profile := workload.RIPE()
	width := profile.Width
	rs, err := workload.Generate(profile, 1500, 7)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := workload.GenerateTrace(rs, workload.DefaultTrace(384, 9))
	if err != nil {
		t.Fatal(err)
	}
	// The calibrated trace is hit-heavy; uniform keys supply the misses.
	corpus := append(trace, workload.UniformTrace(width, 128, 11)...)

	oracle := lpm.NewTrieMatcher(rs)
	hits, misses := 0, 0
	for _, k := range corpus {
		if _, ok := oracle.Lookup(k); ok {
			hits++
		} else {
			misses++
		}
	}
	if hits == 0 || misses == 0 {
		t.Fatalf("corpus must cover both outcomes: %d hits, %d misses", hits, misses)
	}

	cfg := core.Config{BucketSize: 8, Model: QuickModel()}
	eng, err := core.Build(rs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	upd := core.NewUpdatable(eng, 0)
	sh, err := shard.Build(rs, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	sh.EnableCache(64 << 10)
	su, err := shard.BuildUpdatable(rs, cfg, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer su.Close()
	su.EnableCache(64 << 10)
	cache := lcache.New(64 << 10)

	singles := []struct {
		name string
		look func(k keys.Value) (uint64, bool)
	}{
		{"Engine.Lookup", eng.Lookup},
		{"Engine.LookupReference", eng.LookupReference},
		{"Engine.LookupMem", func(k keys.Value) (uint64, bool) {
			tr := eng.LookupMem(k, cachesim.Null{})
			return tr.Action, tr.Matched
		}},
		{"Engine.LookupSpan", func(k keys.Value) (uint64, bool) {
			tr, _ := eng.LookupSpan(k, cachesim.Null{})
			return tr.Action, tr.Matched
		}},
		{"Engine.LookupCached", func(k keys.Value) (uint64, bool) {
			a, ok, _ := eng.LookupCached(k, cache)
			return a, ok
		}},
		{"Updatable.Lookup", upd.Lookup},
		{"Updatable.LookupCached", func(k keys.Value) (uint64, bool) {
			a, ok, _ := upd.LookupCached(k, cache)
			return a, ok
		}},
		{"Sharded.Lookup", sh.Lookup},
		{"Sharded.LookupCached", func(k keys.Value) (uint64, bool) {
			a, ok, _ := sh.LookupCached(k)
			return a, ok
		}},
		{"ShardedUpdatable.Lookup", su.Lookup},
		{"ShardedUpdatable.LookupCached", func(k keys.Value) (uint64, bool) {
			a, ok, _ := su.LookupCached(k)
			return a, ok
		}},
	}
	for _, st := range plane.Matrix() {
		st := st
		c := cache
		if !st.Cached {
			c = nil
		}
		singles = append(singles,
			struct {
				name string
				look func(k keys.Value) (uint64, bool)
			}{"Engine.LookupStack/" + st.String(), func(k keys.Value) (uint64, bool) {
				a, ok, _ := eng.LookupStack(st, k, c)
				return a, ok
			}},
			struct {
				name string
				look func(k keys.Value) (uint64, bool)
			}{"Updatable.LookupStack/" + st.String(), func(k keys.Value) (uint64, bool) {
				a, ok, _ := upd.LookupStack(st, k, c)
				return a, ok
			}},
			struct {
				name string
				look func(k keys.Value) (uint64, bool)
			}{"Sharded.LookupStack/" + st.String(), func(k keys.Value) (uint64, bool) {
				a, ok, _ := sh.LookupStack(st, k)
				return a, ok
			}},
			struct {
				name string
				look func(k keys.Value) (uint64, bool)
			}{"ShardedUpdatable.LookupStack/" + st.String(), func(k keys.Value) (uint64, bool) {
				a, ok, _ := su.LookupStack(st, k)
				return a, ok
			}},
		)
	}
	for _, tc := range singles {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, k := range corpus {
				want, wantOK := oracle.Lookup(k)
				got, ok := tc.look(k)
				if ok != wantOK || (wantOK && got != want) {
					t.Fatalf("key %v: (%d,%v), oracle (%d,%v)", k, got, ok, want, wantOK)
				}
			}
		})
	}

	coreBatch := func(res []core.BatchResult) []Result {
		out := make([]Result, len(res))
		for i, r := range res {
			out[i] = Result{r.Action, r.Matched}
		}
		return out
	}
	shardBatch := func(res []shard.Result) []Result {
		out := make([]Result, len(res))
		for i, r := range res {
			out[i] = Result{r.Action, r.Matched}
		}
		return out
	}
	batches := []struct {
		name  string
		batch func(ks []keys.Value) []Result
	}{
		{"Engine.LookupBatch", func(ks []keys.Value) []Result {
			return coreBatch(eng.LookupBatch(ks, nil))
		}},
		{"Engine.LookupBatchMem", func(ks []keys.Value) []Result {
			return coreBatch(eng.LookupBatchMem(ks, nil, cachesim.Null{}))
		}},
		{"Engine.LookupBatchCached", func(ks []keys.Value) []Result {
			return coreBatch(eng.LookupBatchCached(ks, nil, cache, eng.CacheEpoch().Load()))
		}},
		{"Engine.LookupBatchCachedMem", func(ks []keys.Value) []Result {
			return coreBatch(eng.LookupBatchCachedMem(ks, nil, cachesim.Null{}, cache, eng.CacheEpoch().Load()))
		}},
		{"Sharded.LookupBatch", func(ks []keys.Value) []Result {
			return shardBatch(sh.LookupBatch(ks))
		}},
		{"ShardedUpdatable.LookupBatch", func(ks []keys.Value) []Result {
			return shardBatch(su.LookupBatch(ks))
		}},
	}
	for _, st := range plane.Matrix() {
		st := st
		c := cache
		if !st.Cached {
			c = nil
		}
		batches = append(batches,
			struct {
				name  string
				batch func(ks []keys.Value) []Result
			}{"Engine.LookupBatchStack/" + st.String(), func(ks []keys.Value) []Result {
				return coreBatch(eng.LookupBatchStack(st, ks, nil, cachesim.Null{}, c, eng.CacheEpoch().Load()))
			}},
			struct {
				name  string
				batch func(ks []keys.Value) []Result
			}{"Sharded.LookupBatchStack/" + st.String(), func(ks []keys.Value) []Result {
				return shardBatch(sh.LookupBatchStack(st, ks))
			}},
			struct {
				name  string
				batch func(ks []keys.Value) []Result
			}{"ShardedUpdatable.LookupBatchStack/" + st.String(), func(ks []keys.Value) []Result {
				return shardBatch(su.LookupBatchStack(st, ks))
			}},
		)
	}
	for _, tc := range batches {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res := tc.batch(corpus)
			if len(res) != len(corpus) {
				t.Fatalf("batch returned %d results for %d keys", len(res), len(corpus))
			}
			for i, k := range corpus {
				want, wantOK := oracle.Lookup(k)
				if res[i].Matched != wantOK || (wantOK && res[i].Action != want) {
					t.Fatalf("key %v: (%d,%v), oracle (%d,%v)", k, res[i].Action, res[i].Matched, want, wantOK)
				}
			}
		})
	}
}
