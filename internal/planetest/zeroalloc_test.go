package planetest

import (
	"testing"

	"neurolpm/internal/cachesim"
	"neurolpm/internal/core"
	"neurolpm/internal/keys"
	"neurolpm/internal/lcache"
	"neurolpm/internal/lpm"
	"neurolpm/internal/plane"
)

// TestCachedBatchZeroAllocs pins the shared cached-batch executor
// (core/stack.go lookupBatchCachedStack — the dedup of the old
// LookupBatchCached / LookupBatchCachedMem copies) at zero steady-state
// allocations, on both the all-hit path and the miss-fill path. The miss
// scratch rides a sync.Pool, so the pin runs with GC-triggered pool drops
// tolerated via an amortized bound rather than a per-run assertion.
func TestCachedBatchZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; strict zero-alloc pin runs in the non-race suite")
	}
	const width = 32
	rules := RandomRules(width, 400, 91)
	rs, err := lpm.NewRuleSet(width, rules)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Build(rs, core.Config{BucketSize: 8, Model: QuickModel()})
	if err != nil {
		t.Fatal(err)
	}
	cache := lcache.New(64 << 10)
	st := plane.StackConfig{Cached: true}

	ks := make([]keys.Value, 256)
	for i := range ks {
		ks[i] = rules[(i*7)%len(rules)].Low(width)
	}
	out := make([]core.BatchResult, len(ks))

	run := func() {
		epoch := eng.CacheEpoch().Load()
		out = eng.LookupBatchStack(st, ks, out[:0], cachesim.Null{}, cache, epoch)
	}
	// Warm: fills the cache (subsequent runs are all hits) and primes the
	// scratch pools.
	run()
	if avg := testing.AllocsPerRun(50, run); avg > 0 {
		t.Errorf("all-hit cached batch allocates %.2f/op, want 0", avg)
	}

	// Miss-fill path: bump the epoch before each run so every probe goes
	// stale and the whole batch takes the gather-miss → runBatch → scatter
	// arm. Scratch reuse must keep this allocation-free too.
	missRun := func() {
		eng.CacheEpoch().Bump()
		run()
	}
	missRun()
	if avg := testing.AllocsPerRun(50, missRun); avg > 0 {
		t.Errorf("miss-fill cached batch allocates %.2f/op, want 0", avg)
	}
}

// TestQuantizedZeroAllocs pins the quantized inference arm at zero
// steady-state allocations through every stack shape it serves: the uncached
// single-key arm, the pipelined uncached batch arm, and the cached-batch
// miss-fill arm (where quantized runBatch fills the misses). The fixed-point
// plane must not cost heap traffic the float plane doesn't.
func TestQuantizedZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; strict zero-alloc pin runs in the non-race suite")
	}
	const width = 32
	rules := RandomRules(width, 400, 93)
	rs, err := lpm.NewRuleSet(width, rules)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Build(rs, core.Config{BucketSize: 8, Model: QuickModel()})
	if err != nil {
		t.Fatal(err)
	}
	st := plane.StackConfig{Inference: plane.Quantized}

	ks := make([]keys.Value, 256)
	for i := range ks {
		ks[i] = rules[(i*7)%len(rules)].Low(width)
	}
	out := make([]core.BatchResult, len(ks))

	single := func() {
		for _, k := range ks[:64] {
			eng.LookupStack(st, k, nil)
		}
	}
	single()
	if avg := testing.AllocsPerRun(50, single); avg > 0 {
		t.Errorf("quantized single-key lookup allocates %.2f/64 keys, want 0", avg)
	}

	batch := func() {
		out = eng.LookupBatchStack(st, ks, out[:0], cachesim.Null{}, nil, 0)
	}
	batch()
	if avg := testing.AllocsPerRun(50, batch); avg > 0 {
		t.Errorf("quantized uncached batch allocates %.2f/op, want 0", avg)
	}

	cache := lcache.New(64 << 10)
	cst := plane.StackConfig{Inference: plane.Quantized, Cached: true}
	missRun := func() {
		eng.CacheEpoch().Bump()
		epoch := eng.CacheEpoch().Load()
		out = eng.LookupBatchStack(cst, ks, out[:0], cachesim.Null{}, cache, epoch)
	}
	missRun()
	if avg := testing.AllocsPerRun(50, missRun); avg > 0 {
		t.Errorf("quantized miss-fill cached batch allocates %.2f/op, want 0", avg)
	}
}
