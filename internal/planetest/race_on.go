//go:build race

package planetest

const raceEnabled = true
