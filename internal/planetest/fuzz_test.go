package planetest

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"neurolpm/internal/core"
	"neurolpm/internal/fault"
	"neurolpm/internal/keys"
	"neurolpm/internal/lcache"
	"neurolpm/internal/lpm"
	"neurolpm/internal/plane"
	"neurolpm/internal/shard"
	"neurolpm/internal/tier"
)

// FuzzStackVsOracle is THE differential fuzz target for the lookup-plane
// matrix: for arbitrary rule-sets, shard counts, key streams and update
// interleavings — {Insert, Delete, ModifyAction, failed Commit, successful
// Commit}, with commit failures injected through internal/fault — every
// (topology, stack) combo in plane.Combos() must answer exactly what a trie
// oracle over the logical rule-set answers, after every step (the CLAUDE.md
// correctness invariant).
//
// The input splits in half: the first half derives the base rule-set, the
// second half drives update ops on the sharded side (7 bytes per op, ≤12
// ops) plus a no-retrain tombstone delete on the single engine. `sel` picks
// the shard count and whether the single engine is bucketized.
//
// It subsumes the retired per-combination targets — FuzzEngineVsOracle,
// FuzzShardedVsOracle, FuzzShardedUpdateVsOracle and FuzzCachedVsOracle —
// whose seed corpora are carried forward below.
func FuzzStackVsOracle(f *testing.F) {
	// Union of the retired targets' seeds (the core target's bool third
	// argument maps to sel's low bit, which toggles bucketization).
	f.Add([]byte{0, 0, 0, 0, 7, 1, 255, 255, 0, 0, 3, 2}, uint64(1), uint8(0))
	f.Add([]byte{0, 0, 0, 0, 7, 1, 255, 255, 0, 0, 3, 2}, uint64(1), uint8(1))
	f.Add([]byte{1, 2, 3, 4, 31, 9, 128, 0, 0, 0, 0, 5, 64, 0, 0, 0, 1, 6}, uint64(42), uint8(1))
	f.Add([]byte{1, 2, 3, 4, 31, 9, 128, 0, 0, 0, 0, 5, 64, 0, 0, 0, 1, 6}, uint64(42), uint8(2))
	f.Add([]byte{0, 0, 0, 0, 7, 1, 255, 255, 0, 0, 3, 2, 0, 1, 2, 3, 4, 5, 6, 3, 0, 0, 0, 0, 0, 0, 0}, uint64(1), uint8(1))
	f.Add([]byte{1, 2, 3, 4, 31, 9, 128, 0, 0, 0, 0, 5, 3, 1, 0, 0, 0, 0, 0, 4, 0, 0, 0, 0, 0, 0, 0}, uint64(42), uint8(2))
	f.Add([]byte{}, uint64(0), uint8(0))
	// Tiered-configuration seeds (sel&2): update storm over cold-start tiers.
	f.Add([]byte{0, 0, 0, 0, 7, 1, 255, 255, 0, 0, 3, 2, 0, 1, 2, 3, 4, 5, 6, 3, 0, 0, 0, 0, 0, 0, 0}, uint64(1), uint8(3))
	f.Add([]byte{1, 2, 3, 4, 31, 9, 128, 0, 0, 0, 0, 5, 3, 1, 0, 0, 0, 0, 0, 4, 0, 0, 0, 0, 0, 0, 0}, uint64(42), uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, keySeed uint64, sel uint8) {
		const width = 32
		split := len(data) / 2
		base := DeriveRules(width, data[:split])
		rs, err := lpm.NewRuleSet(width, base)
		if err != nil {
			t.Fatalf("derived rule-set invalid: %v", err)
		}

		// sel&2 runs the tiered configuration (DESIGN.md §16): an aggressive
		// placement policy (demote everything the sketch missed, promote on a
		// single cold fetch) so rebalance passes migrate constantly while the
		// matrix checks run.
		tiered := sel&2 == 2
		tcfg := tier.Config{Enabled: true, DemoteBelow: ^uint32(0)}

		// Single topology: bucketization toggled by sel's low bit.
		cfg := core.Config{Model: FuzzModel()}
		if sel&1 == 1 {
			cfg.BucketSize = 8
			if tiered {
				cfg.Tier = tcfg
			}
		}
		eng, err := core.Build(rs, cfg)
		if err != nil {
			t.Fatalf("Build(%d rules): %v", rs.Len(), err)
		}

		// Sharded topology: fault-injected commits, tiny cache tables for
		// maximal eviction pressure on the cached stacks.
		nShards := []int{2, 4, 8}[int(sel)%3]
		in := fault.NewInjector(keySeed | 1)
		ucfg := core.Config{BucketSize: 8, Model: FuzzModel(), Fault: in.Hook()}
		if tiered {
			ucfg.Tier = tcfg
		}
		u, err := shard.BuildUpdatable(rs, ucfg, nShards, 0)
		if err != nil {
			t.Fatalf("BuildUpdatable(%d shards, %d rules): %v", nShards, rs.Len(), err)
		}
		u.EnableCache(lcache.MinBytes)
		fx := NewFixture(width, eng, u)
		if tiered {
			// Cold-start: every bucket demoted; traffic from the checks below
			// drives burst promotions via the rebalance calls in the op loop.
			if ts := eng.TierStore(); ts != nil {
				ts.DemoteAll()
			}
			for i := 0; i < u.Shards(); i++ {
				if ts := u.Engine(i).TierStore(); ts != nil {
					ts.DemoteAll()
				}
			}
		}

		type ruleKey struct {
			p keys.Value
			l int
		}
		live := append([]lpm.Rule(nil), base...)
		installed := map[ruleKey]bool{}
		for _, r := range base {
			installed[ruleKey{r.Prefix, r.Len}] = true
		}
		rng := rand.New(rand.NewSource(int64(keySeed)))
		shardedCheck := func(stage string, cs []plane.Combo) {
			t.Helper()
			set, err := lpm.NewRuleSet(width, append([]lpm.Rule(nil), live...))
			if err != nil {
				t.Fatalf("%s: model rule-set invalid: %v", stage, err)
			}
			ks := Corpus(width, live, 16, rng)
			if err := fx.CheckCombos(cs, lpm.NewTrieMatcher(set), ks); err != nil {
				t.Fatalf("%s (%d shards): %v", stage, nShards, err)
			}
		}

		// Fresh: both topologies serve the base rule-set — the full 12-combo
		// matrix checks against one oracle.
		baseOracle := lpm.NewTrieMatcher(rs)
		freshKeys := Corpus(width, base, 64, rng)
		if err := fx.CheckCombos(SingleCombos(), baseOracle, freshKeys); err != nil {
			t.Fatalf("fresh: %v", err)
		}
		if err := fx.CheckCombos(ShardedCombos(), baseOracle, freshKeys); err != nil {
			t.Fatalf("fresh (%d shards): %v", nShards, err)
		}

		// Update ops on the sharded side; after each op one stack (rotating
		// through the matrix) re-checks against a fresh oracle.
		ops := data[split:]
		for i, n := 0, 0; i+7 <= len(ops) && n < 12; i, n = i+7, n+1 {
			switch ops[i] % 5 {
			case 0: // insert a fresh rule
				rr := DeriveRules(width, ops[i+1:i+7])
				if len(rr) == 0 || installed[ruleKey{rr[0].Prefix, rr[0].Len}] {
					continue
				}
				r := rr[0]
				if err := u.Insert(r); err != nil {
					if errors.Is(err, core.ErrDeltaFull) {
						continue // backpressure is a legal outcome
					}
					t.Fatalf("insert %v: %v", r, err)
				}
				installed[ruleKey{r.Prefix, r.Len}] = true
				live = append(live, r)
			case 1: // delete an installed rule
				if len(live) == 0 {
					continue
				}
				j := int(ops[i+1]) % len(live)
				r := live[j]
				if err := u.Delete(r.Prefix, r.Len); err != nil {
					t.Fatalf("delete %v: %v", r, err)
				}
				delete(installed, ruleKey{r.Prefix, r.Len})
				live = append(live[:j], live[j+1:]...)
			case 2: // modify an installed rule's action
				if len(live) == 0 {
					continue
				}
				j := int(ops[i+1]) % len(live)
				a := uint64(ops[i+2]) + 1
				if err := u.ModifyAction(live[j].Prefix, live[j].Len, a); err != nil {
					t.Fatalf("modify %v: %v", live[j], err)
				}
				live[j].Action = a
			case 3: // failed commit of a dirty shard
				s := int(ops[i+1]) % u.Shards()
				if u.Statuses()[s].Pending == 0 {
					continue
				}
				in.FailNext(fault.SiteRetrain, 1)
				err := u.Commit(s)
				in.Clear(fault.SiteRetrain)
				if !errors.Is(err, fault.ErrInjected) {
					t.Fatalf("injected commit failure lost: %v", err)
				}
				if u.LastCommitErr() == nil {
					t.Fatal("failed commit not observable through LastCommitErr")
				}
			case 4: // successful commit of a dirty shard
				s := int(ops[i+1]) % u.Shards()
				if u.Statuses()[s].Pending == 0 {
					continue
				}
				if err := u.Commit(s); err != nil {
					t.Fatalf("commit shard %d: %v", s, err)
				}
			}
			if tiered {
				// Migrate between op and re-check: promotions/demotions land
				// on live engines (including freshly committed ones) and each
				// migration must invalidate that shard's cached entries.
				u.RebalanceTiers()
				eng.RebalanceTier()
			}
			sc := ShardedCombos()
			rotating := sc[n%len(sc) : n%len(sc)+1]
			shardedCheck(fmt.Sprintf("after op %d", i/7), rotating)
		}

		// Single-engine tombstone delete (the §6.5 no-retrain path): re-check
		// all six single stacks against an oracle over the survivors.
		if len(base) >= 2 {
			doomed := base[int(keySeed)%len(base)]
			if err := eng.Delete(doomed.Prefix, doomed.Len); err != nil {
				t.Fatalf("Delete(%v): %v", doomed, err)
			}
			var rest []lpm.Rule
			for _, r := range base {
				if r.Prefix != doomed.Prefix || r.Len != doomed.Len {
					rest = append(rest, r)
				}
			}
			restSet, err := lpm.NewRuleSet(width, rest)
			if err != nil {
				t.Fatal(err)
			}
			if err := fx.CheckCombos(SingleCombos(), lpm.NewTrieMatcher(restSet), Corpus(width, base, 32, rng)); err != nil {
				t.Fatalf("post-delete: %v", err)
			}
		}

		// Recovery: a final successful commit applies everything exactly once
		// and resolves any lingering failure state; the full sharded matrix
		// must agree with the oracle afterwards.
		if err := u.CommitAll(); err != nil {
			t.Fatalf("final CommitAll: %v", err)
		}
		if got := u.PendingInserts(); got != 0 {
			t.Fatalf("pending after final commit: %d", got)
		}
		shardedCheck("after recovery", ShardedCombos())
		if err := u.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	})
}
