package planetest

import (
	"math/rand"
	"testing"

	"neurolpm/internal/core"
	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
	"neurolpm/internal/plane"
	"neurolpm/internal/shard"
)

// TestStackMetamorphic checks oracle-free invariants of the lookup-plane
// matrix: with both topologies serving the same rule-set,
//
//  1. all twelve (topology, stack) combos answer every key identically —
//     reference ≡ compiled ≡ quantized, cached ≡ uncached, single ≡ sharded;
//  2. the batch entry point equals the single-key entry point, pointwise;
//  3. batch answers are invariant under permutation of the key slice;
//  4. duplicating every key yields pairwise-identical answers (the second
//     occurrence rides the intra-batch cache-hit path);
//  5. repeating the identical batch yields identical answers (repeat probes
//     hit warm cache entries instead of re-running inference).
//
// None of these properties consults the oracle — they hold for any correct
// implementation, so a violation localizes a divergence BETWEEN variants
// even when both happen to agree with the trie on the sampled keys.
func TestStackMetamorphic(t *testing.T) {
	const width = 32
	rules := RandomRules(width, 600, 71)
	rs, err := lpm.NewRuleSet(width, rules)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Build(rs, core.Config{BucketSize: 8, Model: QuickModel()})
	if err != nil {
		t.Fatal(err)
	}
	u, err := shard.BuildUpdatable(rs, core.Config{BucketSize: 8, Model: QuickModel()}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	u.EnableCache(64 << 10)
	fx := NewFixture(width, eng, u)

	rng := rand.New(rand.NewSource(73))
	ks := Corpus(width, rules, 256, rng)
	combos := plane.Combos()

	// Properties 1+2: every combo, batch and single-key, equals combo[0]'s
	// batch answers.
	ref := fx.LookupBatch(combos[0], ks)
	for _, cb := range combos {
		batch := fx.LookupBatch(cb, ks)
		for i, k := range ks {
			if batch[i] != ref[i] {
				t.Fatalf("%s: batch key %v: %+v, %s got %+v", cb, k, batch[i], combos[0], ref[i])
			}
			if got := fx.Lookup(cb, k); got != ref[i] {
				t.Fatalf("%s: single key %v: %+v, batch %+v", cb, k, got, ref[i])
			}
		}
	}

	for _, cb := range combos {
		// Property 3: permutation invariance.
		perm := rng.Perm(len(ks))
		pks := make([]keys.Value, len(ks))
		for i, j := range perm {
			pks[i] = ks[j]
		}
		pres := fx.LookupBatch(cb, pks)
		for i, j := range perm {
			if pres[i] != ref[j] {
				t.Fatalf("%s: permuted batch key %v: %+v, in-order %+v", cb, pks[i], pres[i], ref[j])
			}
		}

		// Property 4: duplication — both occurrences answer alike.
		doubled := append(append(make([]keys.Value, 0, 2*len(ks)), ks...), ks...)
		dres := fx.LookupBatch(cb, doubled)
		for i := range ks {
			if dres[i] != dres[i+len(ks)] {
				t.Fatalf("%s: key %v answers diverge within one batch: %+v then %+v",
					cb, ks[i], dres[i], dres[i+len(ks)])
			}
			if dres[i] != ref[i] {
				t.Fatalf("%s: doubled batch key %v: %+v, plain batch %+v", cb, ks[i], dres[i], ref[i])
			}
		}

		// Property 5: repeat — the second run of the identical batch (all
		// warm cache entries for cached stacks) answers alike.
		again := fx.LookupBatch(cb, ks)
		for i := range ks {
			if again[i] != ref[i] {
				t.Fatalf("%s: repeat batch key %v: %+v, first run %+v", cb, ks[i], again[i], ref[i])
			}
		}
	}
}
