// Loadbalance: weighted traffic splitting via LPM (App 5, §3.1). Backend
// weights are approximated by slicing the hash space proportionally and
// expressing each slice as prefix rules; accuracy improves with rule
// capacity, which is exactly the scalability argument for a large LPM
// engine. Flows are assigned with one query on a flow-hash key.
package main

import (
	"fmt"
	"hash/fnv"
	"log"
	"math/rand"
	"time"

	"neurolpm"
)

const width = 32

type backend struct {
	name   string
	weight float64
}

func main() {
	backends := []backend{
		{"be-small", 0.05},
		{"be-a", 0.20},
		{"be-b", 0.25},
		{"be-c", 0.35},
		{"be-canary", 0.01},
		{"be-d", 0.14},
	}
	total := 0.0
	for _, b := range backends {
		total += b.weight
	}

	// Slice [0, 2^32) proportionally to the weights.
	var rules []neurolpm.Rule
	domain := float64(uint64(1) << width)
	cursor := uint64(0)
	for i, b := range backends {
		span := uint64(b.weight / total * domain)
		hi := cursor + span - 1
		if i == len(backends)-1 {
			hi = uint64(1)<<width - 1 // absorb rounding in the last slice
		}
		cover, err := neurolpm.PrefixCover(width, neurolpm.KeyFromUint64(cursor), neurolpm.KeyFromUint64(hi), uint64(i))
		if err != nil {
			log.Fatal(err)
		}
		rules = append(rules, cover...)
		cursor = hi + 1
	}
	rs, err := neurolpm.NewRuleSet(width, rules)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := neurolpm.Build(rs, neurolpm.SRAMOnlyConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d backends -> %d prefix rules -> %d ranges (model %d bytes)\n",
		len(backends), rs.Len(), engine.Ranges().Len(), engine.Model().SizeBytes())

	// Assign synthetic flows by 5-tuple hash.
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, len(backends))
	const flows = 400000
	start := time.Now()
	for i := 0; i < flows; i++ {
		h := fnv.New32a()
		var tuple [13]byte
		rng.Read(tuple[:])
		h.Write(tuple[:])
		be, ok := engine.Lookup(neurolpm.KeyFromUint64(uint64(h.Sum32())))
		if !ok {
			log.Fatal("flow unassigned: slices must cover the hash space")
		}
		counts[be]++
	}
	elapsed := time.Since(start)
	fmt.Printf("split %d flows in %v (%.1f Mflows/s)\n\n", flows, elapsed.Round(time.Millisecond),
		float64(flows)/elapsed.Seconds()/1e6)

	fmt.Printf("%-10s  %8s  %8s  %8s\n", "backend", "target", "achieved", "error")
	worst := 0.0
	for i, b := range backends {
		achieved := float64(counts[i]) / flows
		target := b.weight / total
		err := achieved - target
		if e := abs(err); e > worst {
			worst = e
		}
		fmt.Printf("%-10s  %7.3f%%  %7.3f%%  %+7.4f%%\n", b.name, 100*target, 100*achieved, 100*err)
	}
	fmt.Printf("\nworst absolute deviation: %.4f%% (limited only by rule capacity and hash noise)\n", 100*worst)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
