// Stringmatch: NIDS-style pattern scanning through an LPM engine (App 4,
// §3.1). A signature dictionary is encoded as LPM rules over a byte window —
// pattern bytes become the prefix, the pattern index becomes the action —
// and the text is scanned by sliding the window and querying the engine.
// Results are cross-checked against an Aho–Corasick reference automaton.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"neurolpm"
	"neurolpm/internal/strmatch"
)

func main() {
	// A small "signature" dictionary (max 6 bytes → 48-bit rules, the width
	// of the paper's Fig 2 string-matching rule-sets).
	signatures := []string{
		"attack", "atta", "bomb", "worm", "expl", "root", "virus",
		"shell", "inject", "eval", "exec", "drop", "scan", "flood",
	}
	dict, err := strmatch.NewDictionary(signatures)
	if err != nil {
		log.Fatal(err)
	}
	rs, err := dict.Rules()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dictionary: %d patterns -> %d-bit LPM rules, lengths %v bytes\n",
		len(signatures), dict.Width(), dict.SortedLengths())

	engine, err := neurolpm.Build(rs, neurolpm.SRAMOnlyConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Synthesize a payload with signatures planted in random noise.
	rng := rand.New(rand.NewSource(1))
	payload := make([]byte, 256*1024)
	for i := range payload {
		payload[i] = byte('a' + rng.Intn(26))
	}
	planted := 0
	for i := 0; i < len(payload)-8; i += 1000 + rng.Intn(2000) {
		s := signatures[rng.Intn(len(signatures))]
		copy(payload[i:], s)
		planted++
	}

	start := time.Now()
	hits := dict.ScanLPM(engine, payload)
	elapsed := time.Since(start)
	found := 0
	for _, h := range hits {
		if h >= 0 {
			found++
		}
	}
	fmt.Printf("scanned %d KB in %v (%.1f MB/s), %d window hits (%d signatures planted)\n",
		len(payload)/1024, elapsed.Round(time.Millisecond),
		float64(len(payload))/elapsed.Seconds()/1e6, found, planted)

	// Cross-check against the Aho–Corasick reference.
	want := strmatch.NewAhoCorasick(signatures).LongestAt(payload)
	for i := range want {
		if hits[i] != want[i] {
			log.Fatalf("offset %d: LPM %d, Aho-Corasick %d", i, hits[i], want[i])
		}
	}
	fmt.Println("cross-check: LPM scanner agrees with Aho-Corasick at every offset")

	// The prefix-length histogram shows why routing-specialized engines
	// fail here (Fig 2): lengths spread across the whole width.
	fmt.Print("rule prefix lengths (bits): ")
	for l, c := range dict.PrefixLengthHistogram() {
		fmt.Printf("%d:%d ", l, c)
	}
	fmt.Println()
}
