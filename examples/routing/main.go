// Routing: a data-center-scale forwarding example (Apps 1–2, §3.1). It
// builds a bucketized engine over a synthetic BGP-like table, replays a
// locality trace while measuring DRAM traffic through an emulated cache,
// runs the three §6.5 update paths, and repeats the exercise with 128-bit
// IPv6 rules to show the bit-width scaling of §6.4.
package main

import (
	"fmt"
	"log"
	"time"

	"neurolpm"
	"neurolpm/internal/cachesim"
	"neurolpm/internal/workload"
)

func main() {
	// ~100K-rule BGP-like table (use lpmgen for the full 870K-rule set).
	rs, err := workload.Generate(workload.RIPE(), 100000, 7)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	engine, err := neurolpm.Build(rs, neurolpm.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	usage := engine.SRAMUsage()
	fmt.Printf("IPv4: %d rules -> %d ranges; trained in %v\n", rs.Len(), engine.Ranges().Len(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("      SRAM %d KB (model %d B + directory %d KB), DRAM %d KB\n",
		usage.Total/1024, usage.Model, usage.RQArray/1024, engine.DRAMFootprint()/1024)

	// Replay a CAIDA-like trace through a 2MB SRAM budget: whatever the
	// static structures do not use becomes a DRAM cache.
	trace, err := workload.GenerateTrace(rs, workload.DefaultTrace(1000000, 8))
	if err != nil {
		log.Fatal(err)
	}
	cache, err := cachesim.New(cachesim.DefaultConfig(2*1024*1024 - usage.Total))
	if err != nil {
		log.Fatal(err)
	}
	matched := 0
	start = time.Now()
	for _, k := range trace {
		if tr := engine.LookupMem(k, cache); tr.Matched {
			matched++
		}
	}
	elapsed := time.Since(start)
	st := cache.Stats()
	fmt.Printf("      %d queries in %v (%.1f Mq/s sw), %.1f%% matched\n",
		len(trace), elapsed.Round(time.Millisecond), float64(len(trace))/elapsed.Seconds()/1e6,
		100*float64(matched)/float64(len(trace)))
	fmt.Printf("      DRAM: %.4f misses/query, %.2f bytes/query (worst case: %d access)\n",
		float64(st.Misses)/float64(len(trace)), float64(st.Bytes)/float64(len(trace)),
		engine.WorstCaseDRAMAccesses())

	// Updates (§6.5): action modification and deletion need no retraining;
	// insertion rebuilds and retrains, and the new engine is swapped in.
	r0 := rs.Rules[0]
	start = time.Now()
	if err := engine.ModifyAction(r0.Prefix, r0.Len, 63); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update: modify-action in %v\n", time.Since(start).Round(time.Microsecond))
	r1 := rs.Rules[1]
	start = time.Now()
	if err := engine.Delete(r1.Prefix, r1.Len); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update: delete in %v\n", time.Since(start).Round(time.Microsecond))

	batch, err := workload.Generate(workload.RIPE(), 2000, 99)
	if err != nil {
		log.Fatal(err)
	}
	var fresh []neurolpm.Rule
	for _, r := range batch.Rules {
		if rs.Find(r.Prefix, r.Len) < 0 {
			fresh = append(fresh, r)
		}
	}
	start = time.Now()
	engine2, err := engine.InsertBatch(fresh)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update: insert %d rules via retrain in %v (old engine stays live until swap)\n",
		len(fresh), time.Since(start).Round(time.Millisecond))
	_ = engine2

	// IPv6: the same engine architecture at 128 bits — only the arithmetic
	// widens; the number of memory accesses per query is unchanged (§6.4).
	rs6, err := workload.Generate(workload.IPv6(), 20000, 11)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	engine6, err := neurolpm.Build(rs6, neurolpm.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IPv6: %d rules (128-bit) trained in %v; worst-case DRAM accesses still %d\n",
		rs6.Len(), time.Since(start).Round(time.Millisecond), engine6.WorstCaseDRAMAccesses())
}
