// Policychain: multi-table policy-based routing (App 2, §3.1). Virtual
// switches evaluate chained rule tables — here a tenant classifier, a
// per-tenant policy table, and a next-hop table — so one packet triggers
// several dependent LPM queries. The per-query latency bound of NeuroLPM
// (R3) is what keeps the whole chain inside a NIC's microsecond budget.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"neurolpm"
)

func main() {
	// Table 1 — tenant classifier on the outer (underlay) destination:
	// action = tenant id.
	tenantRules := []neurolpm.Rule{}
	for tenant := uint64(0); tenant < 8; tenant++ {
		r, err := neurolpm.IPv4Rule(fmt.Sprintf("10.%d.0.0/16", tenant), tenant)
		if err != nil {
			log.Fatal(err)
		}
		tenantRules = append(tenantRules, r)
	}
	tenantSet, err := neurolpm.NewRuleSet(32, tenantRules)
	if err != nil {
		log.Fatal(err)
	}
	tenantTable, err := neurolpm.Build(tenantSet, neurolpm.SRAMOnlyConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Table 2 — per-tenant policy, keyed on tenant<<24 | subnet<<16:
	// action = policy class (1 = inspect, 2 = forward). Some subnets of
	// each tenant are marked for inspection; the rest fall to the tenant
	// default.
	var policyRules []neurolpm.Rule
	rng := rand.New(rand.NewSource(1))
	for tenant := uint64(0); tenant < 8; tenant++ {
		marked := map[uint64]bool{}
		for len(marked) < 64 {
			marked[uint64(rng.Intn(256))] = true
		}
		for subnet := range marked {
			policyRules = append(policyRules, neurolpm.Rule{
				Prefix: neurolpm.KeyFromUint64(tenant<<24 | subnet<<16),
				Len:    16,
				Action: 1, // inspect
			})
		}
		// Tenant default: forward.
		policyRules = append(policyRules, neurolpm.Rule{
			Prefix: neurolpm.KeyFromUint64(tenant << 24),
			Len:    8,
			Action: 2,
		})
	}
	policySet, err := neurolpm.NewRuleSet(32, policyRules)
	if err != nil {
		log.Fatal(err)
	}
	policyTable, err := neurolpm.Build(policySet, neurolpm.SRAMOnlyConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Table 3 — next hop by policy class and flow hash.
	var hopRules []neurolpm.Rule
	for class := uint64(0); class < 3; class++ {
		hopRules = append(hopRules, neurolpm.Rule{
			Prefix: neurolpm.KeyFromUint64(class << 30),
			Len:    2,
			Action: 100 + class,
		})
	}
	hopSet, err := neurolpm.NewRuleSet(32, hopRules)
	if err != nil {
		log.Fatal(err)
	}
	hopTable, err := neurolpm.Build(hopSet, neurolpm.SRAMOnlyConfig())
	if err != nil {
		log.Fatal(err)
	}

	chain, err := neurolpm.NewChain(
		neurolpm.ChainStage{
			Name:    "tenant",
			Matcher: tenantTable,
			NextKey: func(k neurolpm.Key, tenant uint64) neurolpm.Key {
				// Key for the policy table: tenant at bits 31:24, the
				// destination's subnet byte (bits 15:8) at 23:16, host at
				// 15:8.
				return neurolpm.KeyFromUint64(tenant<<24 | (k.Uint64()&0xFFFF)<<8)
			},
		},
		neurolpm.ChainStage{
			Name:    "policy",
			Matcher: policyTable,
			NextKey: func(k neurolpm.Key, class uint64) neurolpm.Key {
				return neurolpm.KeyFromUint64(class << 30)
			},
		},
		neurolpm.ChainStage{Name: "nexthop", Matcher: hopTable},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chain: %d tables (tenant -> policy -> next hop)\n", chain.Len())

	// Push traffic through the chain.
	const packets = 300000
	classCount := map[uint64]int{}
	misses := 0
	start := time.Now()
	for i := 0; i < packets; i++ {
		dst := uint64(10)<<24 | uint64(rng.Intn(8))<<16 | uint64(rng.Intn(1<<16))
		res := chain.Lookup(neurolpm.KeyFromUint64(dst))
		if !res.Matched {
			misses++
			continue
		}
		classCount[res.Actions[2]]++
	}
	elapsed := time.Since(start)
	fmt.Printf("processed %d packets in %v (%.2f Mpkt/s, 3 LPM queries each)\n",
		packets, elapsed.Round(time.Millisecond), float64(packets)/elapsed.Seconds()/1e6)
	fmt.Printf("next-hop distribution: %v, slow-path misses: %d\n", classCount, misses)
}
