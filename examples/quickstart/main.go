// Quickstart: build a NeuroLPM engine over a small IPv4 forwarding table
// and route a few packets. This is App 1 of the paper (§3.1) in its
// simplest form.
package main

import (
	"fmt"
	"log"
	"net/netip"

	"neurolpm"
)

func main() {
	// A toy forwarding table: action = output port.
	table := []struct {
		cidr string
		port uint64
	}{
		{"0.0.0.0/0", 0},      // default route
		{"10.0.0.0/8", 1},     // private aggregate
		{"10.1.0.0/16", 2},    // site
		{"10.1.2.0/24", 3},    // rack
		{"192.168.0.0/16", 4}, // lab
		{"203.0.113.0/24", 5}, // documentation range
	}
	var rules []neurolpm.Rule
	for _, e := range table {
		r, err := neurolpm.IPv4Rule(e.cidr, e.port)
		if err != nil {
			log.Fatal(err)
		}
		rules = append(rules, r)
	}
	rs, err := neurolpm.NewRuleSet(32, rules)
	if err != nil {
		log.Fatal(err)
	}

	// Offline preparation: ranges → (buckets) → RQRMI training (§4).
	engine, err := neurolpm.Build(rs, neurolpm.SRAMOnlyConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built engine: %d rules, %d ranges, model %d bytes, max error %d\n",
		rs.Len(), engine.Ranges().Len(), engine.Model().SizeBytes(), engine.Model().MaxErr())

	// Online queries: inference + bounded secondary search.
	for _, addr := range []string{"10.1.2.3", "10.1.200.7", "10.200.0.1", "192.168.5.5", "8.8.8.8"} {
		port, ok := engine.Lookup(neurolpm.IPv4Key(netip.MustParseAddr(addr)))
		if !ok {
			log.Fatalf("%s: no route (default route should always match)", addr)
		}
		fmt.Printf("%-14s -> port %d\n", addr, port)
	}
}
