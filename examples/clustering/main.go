// Clustering: line-rate 1-D k-means assignment through LPM (App 3, §3.1,
// after Clustreams). Centroids partition the key space into nearest-
// centroid cells; each cell becomes a handful of prefix rules whose action
// is the cluster id — which may be any 64-bit integer, the capability
// byte-action engines like SAIL lack. Streaming elements are then assigned
// to clusters with one LPM query each.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"neurolpm"
)

const width = 32

func main() {
	// Centroids (e.g. learned offline by k-means over a feature hash).
	rng := rand.New(rand.NewSource(42))
	centroids := make([]uint64, 12)
	for i := range centroids {
		centroids[i] = uint64(rng.Uint32())
	}
	sort.Slice(centroids, func(i, j int) bool { return centroids[i] < centroids[j] })

	// Nearest-centroid cell boundaries: midpoints between neighbours.
	var rules []neurolpm.Rule
	lo := uint64(0)
	for i, c := range centroids {
		hi := uint64(1)<<width - 1
		if i+1 < len(centroids) {
			hi = (c + centroids[i+1]) / 2
		}
		// Cluster ids are large values — LPM actions are full 64-bit.
		clusterID := 0xC0FFEE0000000000 | uint64(i)
		cover, err := neurolpm.PrefixCover(width, neurolpm.KeyFromUint64(lo), neurolpm.KeyFromUint64(hi), clusterID)
		if err != nil {
			log.Fatal(err)
		}
		rules = append(rules, cover...)
		lo = hi + 1
	}
	rs, err := neurolpm.NewRuleSet(width, rules)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := neurolpm.Build(rs, neurolpm.SRAMOnlyConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d centroids -> %d prefix rules -> %d ranges\n",
		len(centroids), rs.Len(), engine.Ranges().Len())

	// Stream elements and count cluster sizes; verify against a direct
	// nearest-centroid computation.
	counts := map[uint64]int{}
	const n = 500000
	start := time.Now()
	for i := 0; i < n; i++ {
		x := uint64(rng.Uint32())
		id, ok := engine.Lookup(neurolpm.KeyFromUint64(x))
		if !ok {
			log.Fatalf("element %#x unassigned", x)
		}
		counts[id]++
		if want := nearest(centroids, x); id != 0xC0FFEE0000000000|uint64(want) {
			log.Fatalf("element %#x: cluster %#x, nearest centroid %d", x, id, want)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("assigned %d elements in %v (%.1f M/s), all verified against exact nearest-centroid\n",
		n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds()/1e6)
	for i := range centroids {
		fmt.Printf("cluster %2d: %6d elements\n", i, counts[0xC0FFEE0000000000|uint64(i)])
	}
}

// nearest returns the index of the closest centroid (ties to the lower one,
// matching the midpoint cell construction).
func nearest(centroids []uint64, x uint64) int {
	best, bestDist := 0, dist(centroids[0], x)
	for i := 1; i < len(centroids); i++ {
		if d := dist(centroids[i], x); d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

func dist(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}
