// Command lpmgen generates synthetic rule-sets and query traces from the
// calibrated workload families (DESIGN.md §2 substitutions for the paper's
// RIPE / RouteViews / Stanford / Snort inputs).
//
// Usage:
//
//	lpmgen -profile ripe -rules 870000 -out rules.txt
//	lpmgen -profile ripe -rules 10000 -trace 1000000 -traceout trace.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"neurolpm/internal/workload"
)

func main() {
	profile := flag.String("profile", "ripe", "workload family: ripe routeviews stanford snort ipv6")
	nRules := flag.Int("rules", 10000, "number of rules")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "rule-set output file (default stdout)")
	traceN := flag.Int("trace", 0, "also generate a query trace of this length")
	traceOut := flag.String("traceout", "", "trace output file")
	flag.Parse()

	p, ok := workload.Profiles()[*profile]
	if !ok {
		names := make([]string, 0)
		for n := range workload.Profiles() {
			names = append(names, n)
		}
		sort.Strings(names)
		fatal("unknown profile %q (have %v)", *profile, names)
	}
	rs, err := workload.Generate(p, *nRules, *seed)
	if err != nil {
		fatal("%v", err)
	}
	if err := writeText(*out, rs.Format()); err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "lpmgen: %d rules (%d-bit, profile %s)\n", rs.Len(), rs.Width, p.Name)

	if *traceN > 0 {
		trace, err := workload.GenerateTrace(rs, workload.DefaultTrace(*traceN, *seed+1))
		if err != nil {
			fatal("%v", err)
		}
		var b strings.Builder
		if err := workload.WriteTrace(&b, trace); err != nil {
			fatal("%v", err)
		}
		if err := writeText(*traceOut, b.String()); err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "lpmgen: %d trace queries\n", len(trace))
	}
}

func writeText(path, text string) error {
	if path == "" {
		_, err := os.Stdout.WriteString(text)
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := w.WriteString(text); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lpmgen: "+format+"\n", args...)
	os.Exit(1)
}
