// Command lpmquery serves queries against a rule-set with a NeuroLPM
// engine, optionally reusing a model trained by lpmtrain, and reports
// throughput and per-query access statistics. Without -queries it replays a
// synthetic locality trace.
//
// Usage:
//
//	lpmquery -rules rules.txt -width 32 -model model.bin -n 1000000
//	lpmquery -rules rules.txt -queries trace.txt
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"time"

	"neurolpm/internal/cachesim"
	"neurolpm/internal/core"
	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
	"neurolpm/internal/rqrmi"
	"neurolpm/internal/serve"
	"neurolpm/internal/telemetry"
	"neurolpm/internal/workload"
)

func main() {
	rulesPath := flag.String("rules", "", "rule-set file (required)")
	width := flag.Int("width", 32, "key bit width")
	bucket := flag.Int("bucket", 8, "ranges per bucket; 0 = SRAM-only")
	modelPath := flag.String("model", "", "model file from lpmtrain (skips training)")
	queriesPath := flag.String("queries", "", "trace file (one hex key per line)")
	n := flag.Int("n", 1000000, "synthetic trace length when -queries is absent")
	sramMB := flag.Int("sram", 0, "emulate a cache of this many MB in front of DRAM (0 = uncached accounting)")
	seed := flag.Int64("seed", 1, "trace seed")
	oracle := flag.Bool("oracle", false, "cross-check every result against the trie oracle")
	metricsAddr := flag.String("metrics", "", "serve /metrics and /debug/pprof on this address while running")
	flag.Parse()

	if *metricsAddr != "" {
		go func() {
			if err := http.ListenAndServe(*metricsAddr, serve.MetricsHandler(telemetry.Default)); err != nil {
				fmt.Fprintf(os.Stderr, "lpmquery: metrics listener: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "lpmquery: metrics on http://%s/metrics\n", *metricsAddr)
	}

	if *rulesPath == "" {
		fatal("-rules is required")
	}
	text, err := os.ReadFile(*rulesPath)
	if err != nil {
		fatal("%v", err)
	}
	rs, err := lpm.ParseRuleSet(*width, string(text))
	if err != nil {
		fatal("%v", err)
	}

	var eng *core.Engine
	cfg := core.Config{BucketSize: *bucket, Model: rqrmi.DefaultConfig()}
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			fatal("%v", err)
		}
		model, err := rqrmi.ReadModel(f)
		f.Close()
		if err != nil {
			fatal("%v", err)
		}
		eng, err = core.BuildWithModel(rs, cfg, model, false)
		if err != nil {
			fatal("%v", err)
		}
	} else {
		start := time.Now()
		eng, err = core.Build(rs, cfg)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "lpmquery: trained in %v\n", time.Since(start).Round(time.Millisecond))
	}

	var trace []keys.Value
	if *queriesPath != "" {
		f, err := os.Open(*queriesPath)
		if err != nil {
			fatal("%v", err)
		}
		trace, err = workload.ReadTrace(f, *width)
		f.Close()
		if err != nil {
			fatal("%v", err)
		}
	} else {
		trace, err = workload.GenerateTrace(rs, workload.DefaultTrace(*n, *seed))
		if err != nil {
			fatal("%v", err)
		}
	}

	var mem cachesim.Mem = &cachesim.Uncached{}
	var cache *cachesim.Cache
	if *sramMB > 0 {
		budget := *sramMB*1024*1024 - eng.SRAMUsage().Total
		if budget <= 0 {
			fatal("SRAM budget of %dMB is below the engine's static footprint (%d bytes)", *sramMB, eng.SRAMUsage().Total)
		}
		cache, err = cachesim.New(cachesim.DefaultConfig(budget))
		if err != nil {
			fatal("%v", err)
		}
		mem = cache
	}

	var ref lpm.Matcher
	if *oracle {
		ref = lpm.NewTrieMatcher(rs)
	}

	matched := 0
	var probes uint64
	start := time.Now()
	for _, k := range trace {
		tr := eng.LookupMem(k, mem)
		if tr.Matched {
			matched++
		}
		probes += uint64(tr.SRAMProbes)
		if ref != nil {
			want, wantOK := ref.Lookup(k)
			if wantOK != tr.Matched || (wantOK && want != tr.Action) {
				fatal("MISMATCH at %v: engine (%d,%v), oracle (%d,%v)", k, tr.Action, tr.Matched, want, wantOK)
			}
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("queries:      %d (%.1f%% matched)\n", len(trace), 100*float64(matched)/float64(len(trace)))
	fmt.Printf("elapsed:      %v (%.2f Mq/s software)\n", elapsed.Round(time.Millisecond),
		float64(len(trace))/elapsed.Seconds()/1e6)
	fmt.Printf("SRAM probes:  %.2f per query\n", float64(probes)/float64(len(trace)))
	var st cachesim.Stats
	if cache != nil {
		st = cache.Stats()
	} else {
		st = mem.(*cachesim.Uncached).Stats()
	}
	if st.Accesses > 0 {
		fmt.Printf("DRAM:         %.3f misses/query, %.2f bytes/query\n",
			float64(st.Misses)/float64(len(trace)), float64(st.Bytes)/float64(len(trace)))
	} else {
		fmt.Println("DRAM:         none (SRAM-only design)")
	}
	if *oracle {
		fmt.Println("oracle:       all results verified")
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lpmquery: "+format+"\n", args...)
	os.Exit(1)
}
