package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"neurolpm/internal/experiments"
)

// guardTolerance is the allowed relative regression on a speedup ratio
// before the guard fails: measured < baseline × (1 − 3%) is a regression.
// Ratios (compiled/reference, cached/uncached) cancel machine-speed drift,
// so a tight bound holds where absolute Mlookups/s would flake.
const guardTolerance = 0.03

// baselineSpeedups extracts {row key → speedup} for one experiment from a
// BENCH_*.json file, accepting both the -compact shape (pipe-joined row
// strings) and the full shape (string-slice rows). keyCols and speedupCol
// index into the row's columns.
func baselineSpeedups(path, exp string, keyCols []int, speedupCol int) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var report struct {
		Experiments []struct {
			Name string          `json:"name"`
			Rows json.RawMessage `json:"rows"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	for _, e := range report.Experiments {
		if e.Name != exp {
			continue
		}
		var rows [][]string
		var compact []string
		if err := json.Unmarshal(e.Rows, &compact); err == nil {
			for _, r := range compact {
				rows = append(rows, strings.Split(r, " | "))
			}
		} else if err := json.Unmarshal(e.Rows, &rows); err != nil {
			return nil, fmt.Errorf("%s: experiment %q rows: %w", path, exp, err)
		}
		out := make(map[string]float64, len(rows))
		for _, row := range rows {
			if speedupCol >= len(row) {
				continue
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(row[speedupCol]), 64)
			if err != nil {
				return nil, fmt.Errorf("%s: experiment %q speedup %q: %w", path, exp, row[speedupCol], err)
			}
			out[guardKey(row, keyCols)] = v
		}
		return out, nil
	}
	return nil, fmt.Errorf("%s: no experiment %q in baseline", path, exp)
}

func guardKey(row []string, keyCols []int) string {
	parts := make([]string, 0, len(keyCols))
	for _, c := range keyCols {
		parts = append(parts, strings.TrimSpace(row[c]))
	}
	return strings.Join(parts, "/")
}

// guardRow is one measured-vs-baseline comparison.
type guardRow struct {
	exp, key       string
	base, measured float64
	mismatches     int
}

func (g guardRow) verdict() (string, bool) {
	if g.mismatches != 0 {
		return fmt.Sprintf("FAIL (%d oracle mismatches)", g.mismatches), false
	}
	if g.base == 0 {
		return "skip (no baseline row)", true
	}
	rel := g.measured/g.base - 1
	if rel < -guardTolerance {
		return fmt.Sprintf("FAIL (%.1f%% regression)", -100*rel), false
	}
	return fmt.Sprintf("ok (%+.1f%%)", 100*rel), true
}

// guardAttempts bounds the retry loop: a row passes the moment any attempt
// lands within tolerance (each row keeps its best attempt), so only a
// regression that reproduces across every attempt — a real one, not a noisy
// co-tenant — fails the guard. Oracle mismatches fail immediately.
const guardAttempts = 3

// guardMeasure runs E23 + E25 + E28 + E29 once and returns one guardRow per
// table row. E28 contributes two ratio sets (fast-tier saving, p99 headroom)
// from its deterministic rows only — the sketch row rides the 1:64 hotness
// sampling phase and would flake any fixed tolerance. E29 contributes its
// deterministic bytes-per-query ratio; the measured wire rows' oracle
// mismatches and request errors fold into that row, so a wire plane serving
// a single wrong answer fails the guard even though its throughput is not
// pinned.
func guardMeasure(sc experiments.Scale, compBase, cacheBase, tierFastBase, tierP99Base, wireBytesBase map[string]float64) ([]guardRow, error) {
	var rows []guardRow
	comp, err := experiments.CompiledSpeedup(sc)
	if err != nil {
		return nil, fmt.Errorf("E23: %w", err)
	}
	for _, c := range comp {
		key := fmt.Sprintf("%s/%d", c.Path, c.BatchSize)
		rows = append(rows, guardRow{"compiled", key, compBase[key], c.Speedup, c.Mismatches})
	}
	cache, err := experiments.CacheHotKey(sc)
	if err != nil {
		return nil, fmt.Errorf("E25: %w", err)
	}
	for _, c := range cache {
		key := fmt.Sprintf("%s/%d", c.Workload, c.CacheKB)
		rows = append(rows, guardRow{"cache", key, cacheBase[key], c.Speedup, c.Mismatches})
	}
	tiered, err := experiments.Tiered(sc)
	if err != nil {
		return nil, fmt.Errorf("E28: %w", err)
	}
	for _, c := range tiered {
		if !c.Deterministic {
			continue
		}
		rows = append(rows,
			guardRow{"tier-fast", c.Config, tierFastBase[c.Config], c.FastSavingX, c.Mismatches},
			guardRow{"tier-p99", c.Config, tierP99Base[c.Config], c.HeadroomX, c.Mismatches})
	}
	wireCells, err := experiments.Wire(sc)
	if err != nil {
		return nil, fmt.Errorf("E29: %w", err)
	}
	wireBad := 0
	for _, c := range wireCells {
		wireBad += c.Mismatches + c.Errors
	}
	for _, c := range wireCells {
		if !c.Deterministic {
			continue
		}
		rows = append(rows, guardRow{"wire-bytes", c.Config, wireBytesBase[c.Config], c.VsHTTPX, wireBad})
	}
	return rows, nil
}

// runGuard reruns E23, E25, E28 and E29 at quick scale through the unified
// plane-stack entry points and compares every ratio against the baseline.
func runGuard(sc experiments.Scale, path string) error {
	compBase, err := baselineSpeedups(path, "compiled", []int{0, 1}, 3)
	if err != nil {
		return err
	}
	cacheBase, err := baselineSpeedups(path, "cache", []int{0, 1}, 3)
	if err != nil {
		return err
	}
	// E28 columns: 3 = fast saving x, 6 = p99 headroom x (see TieredTable).
	tierFastBase, err := baselineSpeedups(path, "tiered", []int{0}, 3)
	if err != nil {
		return err
	}
	tierP99Base, err := baselineSpeedups(path, "tiered", []int{0}, 6)
	if err != nil {
		return err
	}
	// E29 columns: 5 = vs http x (the deterministic bytes/query ratio row).
	wireBytesBase, err := baselineSpeedups(path, "wire", []int{0}, 5)
	if err != nil {
		return err
	}

	fmt.Printf("# unified-stack bench guard vs %s (tolerance %.0f%%, up to %d attempts)\n",
		path, 100*guardTolerance, guardAttempts)
	var best []guardRow
	for attempt := 1; attempt <= guardAttempts; attempt++ {
		rows, err := guardMeasure(sc, compBase, cacheBase, tierFastBase, tierP99Base, wireBytesBase)
		if err != nil {
			return err
		}
		if best == nil {
			best = rows
		} else {
			for i := range rows {
				if rows[i].mismatches > best[i].mismatches {
					best[i].mismatches = rows[i].mismatches // correctness never retries away
				}
				if rows[i].measured > best[i].measured {
					best[i].measured = rows[i].measured
				}
			}
		}
		failed := 0
		for _, g := range best {
			if _, ok := g.verdict(); !ok {
				failed++
			}
		}
		if failed == 0 {
			break
		}
		if attempt < guardAttempts {
			fmt.Printf("attempt %d: %d rows outside tolerance, retrying\n", attempt, failed)
		}
	}

	failed := 0
	for _, g := range best {
		verdict, ok := g.verdict()
		if !ok {
			failed++
		}
		fmt.Printf("%-9s %-28s baseline %5.2f  measured %5.2f  %s\n", g.exp, g.key, g.base, g.measured, verdict)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d speedup ratios regressed beyond %.0f%% in all %d attempts (or mismatched the oracle)",
			failed, len(best), 100*guardTolerance, guardAttempts)
	}
	fmt.Printf("guard: all %d speedup ratios within %.0f%% of baseline\n", len(best), 100*guardTolerance)
	return nil
}
