// Command lpmbench regenerates the paper's tables and figures (DESIGN.md's
// experiment index E1–E15). By default it runs every experiment at quick
// scale; -full switches to paper-scale inputs (§10.1 rule counts, 10M-query
// traces), which takes tens of minutes.
//
// Usage:
//
//	lpmbench [-exp name] [-full] [-seed N]
//
// Experiments: fig2 fig6a fig6b fig7 fig8 fig9 fig10 table1 expansion
// worstcase binsearch bitwidth updates scaling headline modelsize tss dram
// replicas designspace worstbw all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"neurolpm/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (see doc comment)")
	full := flag.Bool("full", false, "paper-scale inputs (§10.1); slow")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	sc := experiments.QuickScale()
	if *full {
		sc = experiments.PaperScale()
	}
	sc.Seed = *seed

	runners := map[string]func(experiments.Scale) (*experiments.Table, error){
		"fig2": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.Fig2(sc)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		},
		"fig6a": func(sc experiments.Scale) (*experiments.Table, error) {
			return experiments.Fig6aTable(experiments.Fig6a(sc.Seed)), nil
		},
		"fig6b": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.Fig6b(sc)
			if err != nil {
				return nil, err
			}
			return experiments.Fig6bTable(r), nil
		},
		"fig7": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.Fig7(sc)
			if err != nil {
				return nil, err
			}
			return experiments.Fig7Table(r), nil
		},
		"fig8": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.Fig8(sc)
			if err != nil {
				return nil, err
			}
			return experiments.Fig8Table(r), nil
		},
		"fig9": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.Fig9(sc)
			if err != nil {
				return nil, err
			}
			return experiments.Fig9Table(r), nil
		},
		"fig10": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.Fig10(sc)
			if err != nil {
				return nil, err
			}
			return experiments.Fig10Table(r), nil
		},
		"table1": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.Table1(sc)
			if err != nil {
				return nil, err
			}
			return experiments.Table1Table(r), nil
		},
		"expansion": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.Expansion(sc)
			if err != nil {
				return nil, err
			}
			return experiments.ExpansionTable(r), nil
		},
		"worstcase": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.WorstCase(sc)
			if err != nil {
				return nil, err
			}
			return experiments.WorstCaseTable(r), nil
		},
		"binsearch": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.VsBinarySearch(sc)
			if err != nil {
				return nil, err
			}
			return experiments.VsBinarySearchTable(r), nil
		},
		"bitwidth": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.Bitwidth(sc)
			if err != nil {
				return nil, err
			}
			return experiments.BitwidthTable(r), nil
		},
		"updates": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.Updates(sc)
			if err != nil {
				return nil, err
			}
			return experiments.UpdatesTable(r), nil
		},
		"scaling": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.Scaling(sc)
			if err != nil {
				return nil, err
			}
			return experiments.ScalingTable(r), nil
		},
		"headline": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.Headline(sc)
			if err != nil {
				return nil, err
			}
			return experiments.HeadlineTable(r), nil
		},
		"modelsize": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.ModelSize(sc)
			if err != nil {
				return nil, err
			}
			return experiments.ModelSizeTable(r), nil
		},
		"tss": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.TSSSensitivity(sc)
			if err != nil {
				return nil, err
			}
			return experiments.TSSSensitivityTable(r), nil
		},
		"dram": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.DRAMPipeline(sc)
			if err != nil {
				return nil, err
			}
			return experiments.DRAMPipelineTable(r), nil
		},
		"replicas": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.Replicas(sc)
			if err != nil {
				return nil, err
			}
			return experiments.ReplicasTable(r), nil
		},
		"emexpand": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.EMExpansion(sc)
			if err != nil {
				return nil, err
			}
			return experiments.EMExpansionTable(r), nil
		},
		"worstbw": func(sc experiments.Scale) (*experiments.Table, error) {
			return experiments.WorstCaseBandwidthTable(experiments.WorstCaseBandwidth()), nil
		},
		"designspace": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.DesignSpace(sc)
			if err != nil {
				return nil, err
			}
			return experiments.DesignSpaceTable(r), nil
		},
	}
	order := []string{
		"fig2", "fig6a", "fig6b", "fig7", "fig8", "fig9", "fig10",
		"table1", "expansion", "worstcase", "binsearch", "bitwidth",
		"updates", "scaling", "headline", "modelsize", "tss", "dram", "replicas", "designspace", "worstbw", "emexpand",
	}

	names := order
	if *exp != "all" {
		if _, ok := runners[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "lpmbench: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		names = []string{*exp}
	}
	scaleName := "quick"
	if *full {
		scaleName = "paper"
	}
	fmt.Printf("# lpmbench scale=%s seed=%d\n\n", scaleName, *seed)
	for _, name := range names {
		start := time.Now()
		tab, err := runners[name](sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lpmbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Print(tab.Render())
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
