// Command lpmbench regenerates the paper's tables and figures (DESIGN.md's
// experiment index E1–E15). By default it runs every experiment at quick
// scale; -full switches to paper-scale inputs (§10.1 rule counts, 10M-query
// traces), which takes tens of minutes.
//
// Usage:
//
//	lpmbench [-exp name] [-full] [-seed N] [-json out.json] [-compact]
//	         [-metrics addr] [-guard baseline.json]
//
// Experiments: fig2 fig6a fig6b fig7 fig8 fig9 fig10 table1 expansion
// worstcase binsearch bitwidth updates scaling headline modelsize tss dram
// replicas designspace worstbw emexpand sharded compiled faults cache
// observe tiered wire all
//
// -json writes every experiment's table plus a headline Lookup
// microbenchmark (ns/op, allocs/op) as machine-readable JSON, so the perf
// trajectory is tracked across PRs instead of living only in
// lpmbench_full.txt. -compact switches that JSON to a summary-only shape —
// no timestamp or per-experiment elapsed time, one pipe-joined line per
// table row — so committed BENCH_*.json files diff cleanly across PRs.
// -metrics serves /metrics and /debug/pprof while the run is in flight.
//
// -guard is the unified-stack bench gate (CI's bench-smoke job): it reruns
// E23 (compiled speedup), E25 (hot-key cache), E28's deterministic rows
// (tiered-store fast-tier saving and p99 headroom) and E29's deterministic
// bytes-per-query ratio (wire vs HTTP framing) at quick scale — all
// routed through the plane-stack executor — and compares every ratio
// against the named baseline JSON. Ratios compare machine-portably where
// absolute rates don't; any ratio regressing by more than 3%, or any
// oracle mismatch, exits nonzero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"neurolpm/internal/core"
	"neurolpm/internal/experiments"
	"neurolpm/internal/serve"
	"neurolpm/internal/shard"
	"neurolpm/internal/telemetry"
	"neurolpm/internal/workload"
)

// jsonLatency is the flight recorder's sampled-latency distribution over one
// experiment: the delta of the cumulative neurolpm_lookup_latency_ns
// histogram across the experiment's run. Samples counts committed flight
// records (1 in N lookups), quantiles are log₂-bucket estimates
// (factor-of-two). Absent when the experiment drove no sampled lookups.
type jsonLatency struct {
	Samples uint64  `json:"samples"`
	P50Ns   float64 `json:"p50_ns"`
	P99Ns   float64 `json:"p99_ns"`
	P999Ns  float64 `json:"p999_ns"`
}

// jsonExperiment is one experiment's machine-readable result.
type jsonExperiment struct {
	Name      string       `json:"name"`
	Title     string       `json:"title"`
	Header    []string     `json:"header"`
	Rows      [][]string   `json:"rows"`
	Notes     []string     `json:"notes,omitempty"`
	Latency   *jsonLatency `json:"latency,omitempty"`
	ElapsedNs int64        `json:"elapsed_ns"`
}

// jsonBench is the headline Lookup microbenchmark. ns_per_op is the
// compiled single-key path (the default Engine.Lookup); the companion
// fields track the pre-compilation reference path, the batched compiled
// path, and the sharded batch fan-out, so BENCH_*.json records the whole
// query-plane spectrum across PRs.
type jsonBench struct {
	Rules            int     `json:"rules"`
	Bucketized       bool    `json:"bucketized"`
	Iterations       int     `json:"iterations"`
	NsPerOp          float64 `json:"ns_per_op"`
	AllocsPerOp      int64   `json:"allocs_per_op"`
	BytesPerOp       int64   `json:"bytes_per_op"`
	MLookupsPS       float64 `json:"mlookups_per_sec"`
	NsPerOpReference float64 `json:"ns_per_op_reference"`
	NsPerOpBatch     float64 `json:"ns_per_op_batch"`
	NsPerOpShardBat  float64 `json:"ns_per_op_sharded_batch"`
	CompiledSpeedup  float64 `json:"compiled_speedup"` // reference / compiled ns
}

// jsonReport is the -json output shape (BENCH_*.json across PRs).
type jsonReport struct {
	Scale       string           `json:"scale"`
	Seed        int64            `json:"seed"`
	GoVersion   string           `json:"go_version"`
	Timestamp   string           `json:"timestamp"`
	Experiments []jsonExperiment `json:"experiments"`
	LookupBench *jsonBench       `json:"lookup_bench,omitempty"`
}

// compactExperiment is one experiment in -compact form: the same numbers,
// but each table row rendered as a single pipe-joined line and the
// run-varying fields (timestamp, elapsed) dropped, so BENCH_*.json diffs
// across PRs show only measurement changes.
type compactExperiment struct {
	Name    string       `json:"name"`
	Title   string       `json:"title"`
	Header  string       `json:"header"`
	Rows    []string     `json:"rows"`
	Latency *jsonLatency `json:"latency,omitempty"`
}

// compactReport is the -compact -json output shape.
type compactReport struct {
	Scale       string              `json:"scale"`
	Seed        int64               `json:"seed"`
	GoVersion   string              `json:"go_version"`
	Experiments []compactExperiment `json:"experiments"`
	LookupBench *jsonBench          `json:"lookup_bench,omitempty"`
}

// compacted rewrites the full report into the summary-only shape.
func compacted(r jsonReport) compactReport {
	out := compactReport{Scale: r.Scale, Seed: r.Seed, GoVersion: r.GoVersion, LookupBench: r.LookupBench}
	for _, e := range r.Experiments {
		ce := compactExperiment{Name: e.Name, Title: e.Title, Header: strings.Join(e.Header, " | "), Latency: e.Latency}
		for _, row := range e.Rows {
			ce.Rows = append(ce.Rows, strings.Join(row, " | "))
		}
		out.Experiments = append(out.Experiments, ce)
	}
	return out
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (see doc comment)")
	full := flag.Bool("full", false, "paper-scale inputs (§10.1); slow")
	seed := flag.Int64("seed", 1, "workload seed")
	jsonPath := flag.String("json", "", "write results as machine-readable JSON to this file")
	compact := flag.Bool("compact", false, "with -json: summary-only deterministic shape (no timestamp/elapsed, one line per table row)")
	metricsAddr := flag.String("metrics", "", "serve /metrics and /debug/pprof on this address while running")
	guardPath := flag.String("guard", "", "rerun E23+E25+E28 quick and fail if any ratio regresses >3% vs this baseline JSON")
	flag.Parse()

	if *guardPath != "" {
		sc := experiments.QuickScale()
		sc.Seed = *seed
		if err := runGuard(sc, *guardPath); err != nil {
			fmt.Fprintf(os.Stderr, "lpmbench: guard: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *metricsAddr != "" {
		go func() {
			if err := http.ListenAndServe(*metricsAddr, serve.MetricsHandler(telemetry.Default)); err != nil {
				fmt.Fprintf(os.Stderr, "lpmbench: metrics listener: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "lpmbench: metrics on http://%s/metrics\n", *metricsAddr)
	}

	sc := experiments.QuickScale()
	if *full {
		sc = experiments.PaperScale()
	}
	sc.Seed = *seed

	runners := map[string]func(experiments.Scale) (*experiments.Table, error){
		"fig2": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.Fig2(sc)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		},
		"fig6a": func(sc experiments.Scale) (*experiments.Table, error) {
			return experiments.Fig6aTable(experiments.Fig6a(sc.Seed)), nil
		},
		"fig6b": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.Fig6b(sc)
			if err != nil {
				return nil, err
			}
			return experiments.Fig6bTable(r), nil
		},
		"fig7": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.Fig7(sc)
			if err != nil {
				return nil, err
			}
			return experiments.Fig7Table(r), nil
		},
		"fig8": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.Fig8(sc)
			if err != nil {
				return nil, err
			}
			return experiments.Fig8Table(r), nil
		},
		"fig9": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.Fig9(sc)
			if err != nil {
				return nil, err
			}
			return experiments.Fig9Table(r), nil
		},
		"fig10": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.Fig10(sc)
			if err != nil {
				return nil, err
			}
			return experiments.Fig10Table(r), nil
		},
		"table1": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.Table1(sc)
			if err != nil {
				return nil, err
			}
			return experiments.Table1Table(r), nil
		},
		"expansion": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.Expansion(sc)
			if err != nil {
				return nil, err
			}
			return experiments.ExpansionTable(r), nil
		},
		"worstcase": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.WorstCase(sc)
			if err != nil {
				return nil, err
			}
			return experiments.WorstCaseTable(r), nil
		},
		"binsearch": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.VsBinarySearch(sc)
			if err != nil {
				return nil, err
			}
			return experiments.VsBinarySearchTable(r), nil
		},
		"bitwidth": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.Bitwidth(sc)
			if err != nil {
				return nil, err
			}
			return experiments.BitwidthTable(r), nil
		},
		"updates": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.Updates(sc)
			if err != nil {
				return nil, err
			}
			return experiments.UpdatesTable(r), nil
		},
		"scaling": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.Scaling(sc)
			if err != nil {
				return nil, err
			}
			return experiments.ScalingTable(r), nil
		},
		"headline": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.Headline(sc)
			if err != nil {
				return nil, err
			}
			return experiments.HeadlineTable(r), nil
		},
		"modelsize": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.ModelSize(sc)
			if err != nil {
				return nil, err
			}
			return experiments.ModelSizeTable(r), nil
		},
		"tss": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.TSSSensitivity(sc)
			if err != nil {
				return nil, err
			}
			return experiments.TSSSensitivityTable(r), nil
		},
		"dram": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.DRAMPipeline(sc)
			if err != nil {
				return nil, err
			}
			return experiments.DRAMPipelineTable(r), nil
		},
		"replicas": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.Replicas(sc)
			if err != nil {
				return nil, err
			}
			return experiments.ReplicasTable(r), nil
		},
		"emexpand": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.EMExpansion(sc)
			if err != nil {
				return nil, err
			}
			return experiments.EMExpansionTable(r), nil
		},
		"worstbw": func(sc experiments.Scale) (*experiments.Table, error) {
			return experiments.WorstCaseBandwidthTable(experiments.WorstCaseBandwidth()), nil
		},
		"designspace": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.DesignSpace(sc)
			if err != nil {
				return nil, err
			}
			return experiments.DesignSpaceTable(r), nil
		},
		"sharded": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.ShardedThroughput(sc)
			if err != nil {
				return nil, err
			}
			return experiments.ShardedThroughputTable(r), nil
		},
		"compiled": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.CompiledSpeedup(sc)
			if err != nil {
				return nil, err
			}
			return experiments.CompiledSpeedupTable(r), nil
		},
		"faults": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.FaultStorm(sc)
			if err != nil {
				return nil, err
			}
			return experiments.FaultsTable(r), nil
		},
		"cache": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.CacheHotKey(sc)
			if err != nil {
				return nil, err
			}
			return experiments.CacheHotKeyTable(r), nil
		},
		"observe": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.Observe(sc)
			if err != nil {
				return nil, err
			}
			return experiments.ObserveTable(r), nil
		},
		"tiered": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.Tiered(sc)
			if err != nil {
				return nil, err
			}
			return experiments.TieredTable(r), nil
		},
		"wire": func(sc experiments.Scale) (*experiments.Table, error) {
			r, err := experiments.Wire(sc)
			if err != nil {
				return nil, err
			}
			return experiments.WireTable(r), nil
		},
	}
	order := []string{
		"fig2", "fig6a", "fig6b", "fig7", "fig8", "fig9", "fig10",
		"table1", "expansion", "worstcase", "binsearch", "bitwidth",
		"updates", "scaling", "headline", "modelsize", "tss", "dram", "replicas", "designspace", "worstbw", "emexpand",
		"sharded", "compiled", "faults", "cache", "observe", "tiered", "wire",
	}

	names := order
	if *exp != "all" {
		if _, ok := runners[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "lpmbench: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		names = []string{*exp}
	}
	scaleName := "quick"
	if *full {
		scaleName = "paper"
	}
	report := jsonReport{
		Scale:     scaleName,
		Seed:      *seed,
		GoVersion: runtime.Version(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	fmt.Printf("# lpmbench scale=%s seed=%d\n\n", scaleName, *seed)
	// latHist is the flight recorder's cumulative latency histogram; the
	// snapshot delta across each experiment yields that experiment's sampled
	// tail-latency row (see jsonLatency).
	latHist := telemetry.Default.Histogram("neurolpm_lookup_latency_ns", "")
	for _, name := range names {
		start := time.Now()
		latBefore := latHist.Snapshot()
		tab, err := runners[name](sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lpmbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		fmt.Print(tab.Render())
		fmt.Printf("(%s in %v)\n\n", name, elapsed.Round(time.Millisecond))
		je := jsonExperiment{
			Name:      name,
			Title:     tab.Title,
			Header:    tab.Header,
			Rows:      tab.Rows,
			Notes:     tab.Notes,
			ElapsedNs: elapsed.Nanoseconds(),
		}
		if d := latHist.Snapshot().Sub(latBefore); d.Total > 0 {
			je.Latency = &jsonLatency{
				Samples: d.Total,
				P50Ns:   d.Quantile(0.50),
				P99Ns:   d.Quantile(0.99),
				P999Ns:  d.Quantile(0.999),
			}
		}
		report.Experiments = append(report.Experiments, je)
	}

	if *jsonPath != "" {
		bench, err := lookupBench(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lpmbench: lookup bench: %v\n", err)
			os.Exit(1)
		}
		report.LookupBench = bench
		fmt.Printf("lookup bench: %.1f ns/op compiled (%.1f reference, %.2fx), %.1f ns/op batched, %.1f ns/op sharded-batch, %d allocs/op\n",
			bench.NsPerOp, bench.NsPerOpReference, bench.CompiledSpeedup,
			bench.NsPerOpBatch, bench.NsPerOpShardBat, bench.AllocsPerOp)
		var toWrite any = report
		if *compact {
			toWrite = compacted(report)
		}
		data, err := json.MarshalIndent(toWrite, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "lpmbench: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "lpmbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "lpmbench: wrote %s\n", *jsonPath)
	}
}

// lookupBench measures the instrumented hot path with testing.Benchmark: a
// RIPE-profile bucketized engine queried with a locality trace — the ns/op
// and allocs/op that BENCH_*.json tracks across PRs.
func lookupBench(sc experiments.Scale) (*jsonBench, error) {
	n := sc.Rules["ripe"]
	if n <= 0 {
		n = 40000
	}
	rs, err := workload.Generate(workload.RIPE(), n, sc.Seed)
	if err != nil {
		return nil, err
	}
	eng, err := core.Build(rs, core.Config{BucketSize: 8, Model: sc.Model})
	if err != nil {
		return nil, err
	}
	trace, err := workload.GenerateTrace(rs, workload.DefaultTrace(1<<16, sc.Seed+99))
	if err != nil {
		return nil, err
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.Lookup(trace[i&(1<<16-1)])
		}
	})
	refRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng.LookupReference(trace[i&(1<<16-1)])
		}
	})
	const batchN = 256
	var out []core.BatchResult
	batchRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i += batchN {
			lo := i & (1<<16 - 1) & ^(batchN - 1)
			out = eng.LookupBatch(trace[lo:lo+batchN], out)
		}
	})
	sh, err := shard.Build(rs, core.Config{BucketSize: 8, Model: sc.Model}, 4)
	if err != nil {
		return nil, err
	}
	defer sh.Close()
	shardRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i += batchN {
			lo := i & (1<<16 - 1) & ^(batchN - 1)
			sh.LookupBatch(trace[lo : lo+batchN])
		}
	})
	ns := float64(res.NsPerOp())
	refNs := float64(refRes.NsPerOp())
	return &jsonBench{
		Rules:            rs.Len(),
		Bucketized:       eng.Bucketized(),
		Iterations:       res.N,
		NsPerOp:          ns,
		AllocsPerOp:      res.AllocsPerOp(),
		BytesPerOp:       res.AllocedBytesPerOp(),
		MLookupsPS:       1e3 / ns,
		NsPerOpReference: refNs,
		NsPerOpBatch:     float64(batchRes.NsPerOp()),
		NsPerOpShardBat:  float64(shardRes.NsPerOp()),
		CompiledSpeedup:  refNs / ns,
	}, nil
}
