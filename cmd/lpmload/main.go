// lpmload is the open-loop load driver for a running lpmserve: it replays a
// calibrated (Zipfian, bursty) or uniform key trace — plus an optional
// rule-update stream — against the HTTP or binary wire endpoint at a
// Poisson-scheduled offered rate, and reports offered vs. achieved qps and
// p50/p99/p999 latency measured from each request's scheduled send time
// (coordinated-omission-safe; see internal/load).
//
// The driver needs the same rule-set file the server was started with: it
// generates the query trace against it and, with -verify (on by default),
// checks every response against a local trie oracle. Update flap sites are
// chosen where the rule-set has no full-width rule, so the oracle stays
// valid for every other key; trace keys that land on a flap site are exempt
// from verification.
//
// Usage:
//
//	lpmgen -rules 100000 -out rules.txt
//	lpmserve -rules rules.txt -shards 8 -wire-addr :9090 &
//	lpmload -addr localhost:9090 -proto wire -rate 200000 -duration 10s \
//	        -rules rules.txt -updates 1000 -update-rate 100
//
// Exit status is non-zero when any response disagreed with the oracle.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"neurolpm/internal/keys"
	"neurolpm/internal/load"
	"neurolpm/internal/lpm"
	"neurolpm/internal/workload"
)

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lpmload: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	addr := flag.String("addr", "", "server address host:port (required)")
	proto := flag.String("proto", "wire", "endpoint protocol: wire or http")
	conns := flag.Int("conns", 8, "persistent connections (HTTP: concurrency cap)")
	rate := flag.Float64("rate", 100000, "offered queries/sec, Poisson arrivals (0 = closed loop, one request in flight per connection)")
	duration := flag.Duration("duration", 5*time.Second, "send window")
	rulesPath := flag.String("rules", "", "rule-set file the server was started with (required)")
	width := flag.Int("width", 32, "key bit width")
	traceLen := flag.Int("trace", 200000, "distinct trace positions to replay")
	zipf := flag.Float64("zipf", 1.2, "Zipf skew of the calibrated trace (>1)")
	uniform := flag.Bool("uniform", false, "uniform random keys instead of the calibrated Zipfian trace")
	updates := flag.Int("updates", 0, "rule updates in the churn stream (0 = no updates)")
	updateRate := flag.Float64("update-rate", 100, "offered updates/sec for the churn stream")
	updateSites := flag.Int("update-sites", 16, "distinct flap prefixes the churn stream cycles through")
	verify := flag.Bool("verify", true, "check every response against a local trie oracle")
	seed := flag.Int64("seed", 1, "trace / schedule seed")
	flag.Parse()

	if *addr == "" {
		fatal("-addr is required")
	}
	if *rulesPath == "" {
		fatal("-rules is required (the same file the server loaded)")
	}
	p, err := load.ParseProto(*proto)
	if err != nil {
		fatal("%v", err)
	}
	text, err := os.ReadFile(*rulesPath)
	if err != nil {
		fatal("%v", err)
	}
	rs, err := lpm.ParseRuleSet(*width, string(text))
	if err != nil {
		fatal("%v", err)
	}

	var trace []keys.Value
	if *uniform {
		rng := rand.New(rand.NewSource(*seed))
		mask := keys.MaxValue(rs.Width)
		trace = make([]keys.Value, *traceLen)
		for i := range trace {
			trace[i] = keys.FromParts(rng.Uint64(), rng.Uint64()).And(mask)
		}
	} else {
		tc := workload.DefaultTrace(*traceLen, *seed)
		tc.ZipfS = *zipf
		trace, err = workload.GenerateTrace(rs, tc)
		if err != nil {
			fatal("%v", err)
		}
	}

	cfg := load.Config{
		Addr:     *addr,
		Proto:    p,
		Conns:    *conns,
		Rate:     *rate,
		Duration: *duration,
		Trace:    trace,
		Width:    rs.Width,
		Seed:     *seed,
	}
	if *updates > 0 {
		stream, err := workload.GenerateUpdates(rs, workload.UpdateConfig{
			Count:      *updates,
			Rate:       *updateRate,
			Sites:      *updateSites,
			ActionBase: 1 << 25,
			Seed:       *seed | 1,
		})
		if err != nil {
			fatal("%v", err)
		}
		cfg.Updates = stream.Updates
		cfg.SkipVerify = stream.SiteSet()
	}
	if *verify {
		oracle := lpm.NewTrieMatcher(rs)
		expected := make([]load.Result, len(trace))
		for i, k := range trace {
			a, ok := oracle.Lookup(k)
			expected[i] = load.Result{Action: a, Matched: ok}
		}
		cfg.Expected = expected
	}

	mode := "open-loop"
	if *rate <= 0 {
		mode = "closed-loop"
	}
	fmt.Printf("lpmload: %s %s against %s — %d conns, %v window, %d trace keys, %d updates\n",
		mode, p, *addr, *conns, *duration, len(trace), *updates)
	rep, err := load.Run(cfg)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("offered   %10.0f qps\n", rep.Offered)
	fmt.Printf("achieved  %10.0f qps  (%d/%d completed in %v)\n", rep.Achieved, rep.Done, rep.Sent, rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("latency   p50 %v  p99 %v  p999 %v (from scheduled send)\n", rep.P50, rep.P99, rep.P999)
	fmt.Printf("errors    %d requests, %d updates (of %d updates sent)\n", rep.Errors, rep.UpdateErrs, rep.Updates)
	if cfg.Expected != nil {
		fmt.Printf("oracle    %d mismatches\n", rep.Mismatches)
	}
	if rep.Mismatches > 0 {
		os.Exit(1)
	}
}
