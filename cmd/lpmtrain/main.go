// Command lpmtrain runs the offline rule-set preparation stage (§4): it
// reads a textual rule-set, converts it to ranges, bucketizes, trains the
// RQRMI model and serializes the model for later use by lpmquery.
//
// Usage:
//
//	lpmtrain -rules rules.txt -width 32 -bucket 8 -model model.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"neurolpm/internal/core"
	"neurolpm/internal/lpm"
	"neurolpm/internal/rqrmi"
)

func main() {
	rulesPath := flag.String("rules", "", "rule-set file (required)")
	width := flag.Int("width", 32, "key bit width")
	bucket := flag.Int("bucket", 8, "ranges per bucket; 0 = SRAM-only design")
	modelPath := flag.String("model", "", "serialized model output file")
	samples := flag.Int("samples", 4096, "training samples per submodel")
	epochs := flag.Int("epochs", 48, "SGD epochs per submodel")
	targetErr := flag.Int("targeterr", 512, "per-submodel error-bound target")
	workers := flag.Int("workers", 0, "training workers (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "training seed")
	verify := flag.Bool("verify", false, "run the full analytical verification after training")
	flag.Parse()

	if *rulesPath == "" {
		fatal("-rules is required")
	}
	text, err := os.ReadFile(*rulesPath)
	if err != nil {
		fatal("%v", err)
	}
	rs, err := lpm.ParseRuleSet(*width, string(text))
	if err != nil {
		fatal("%v", err)
	}
	mcfg := rqrmi.DefaultConfig()
	mcfg.Samples = *samples
	mcfg.Epochs = *epochs
	mcfg.TargetErr = *targetErr
	mcfg.Workers = *workers
	mcfg.Seed = *seed

	eng, err := core.Build(rs, core.Config{BucketSize: *bucket, Model: mcfg})
	if err != nil {
		fatal("%v", err)
	}
	st := eng.TrainStats()
	usage := eng.SRAMUsage()
	fmt.Printf("rules:        %d (%d-bit)\n", rs.Len(), rs.Width)
	fmt.Printf("ranges:       %d\n", eng.Ranges().Len())
	fmt.Printf("train time:   %v (stragglers: %d, retrained: %d)\n", st.Duration.Round(1e6), st.Stragglers, st.Retrained)
	fmt.Printf("max err:      %d\n", st.MaxErr())
	fmt.Printf("model size:   %d bytes\n", eng.Model().SizeBytes())
	fmt.Printf("SRAM (model): %d bytes\n", usage.Model)
	fmt.Printf("SRAM (RQ):    %d bytes\n", usage.RQArray)
	fmt.Printf("DRAM:         %d bytes\n", eng.DRAMFootprint())

	if *verify {
		if err := eng.Verify(); err != nil {
			fatal("verification failed: %v", err)
		}
		fmt.Println("verification: OK (error bounds hold for all inputs)")
	}
	if *modelPath != "" {
		f, err := os.Create(*modelPath)
		if err != nil {
			fatal("%v", err)
		}
		n, err := eng.Model().WriteTo(f)
		if err != nil {
			fatal("%v", err)
		}
		if err := f.Close(); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("model:        %s (%d bytes)\n", *modelPath, n)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lpmtrain: "+format+"\n", args...)
	os.Exit(1)
}
