// Command lpmtop is a polling terminal dashboard for a running lpmserve: a
// top(1)-style view of the flight-recorder & SLO plane (DESIGN.md §13). It
// polls /slo for windowed tail-latency quantiles, per-shard model drift and
// bucket-hotness skew, and /debug/slow for the worst recorded queries, and
// repaints once per interval. QPS is derived client-side from consecutive
// lookups_total readings, so it reflects every lookup, not just the sampled
// ones.
//
// Usage:
//
//	lpmtop [-addr http://localhost:8080] [-interval 1s] [-slow 5] [-once]
//
// -once prints a single snapshot without clearing the screen (scripts, CI).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

// sloDoc mirrors the /slo response (internal/serve/slo.go). lpmtop is an
// HTTP client on purpose — it exercises the same surface operators script
// against — so the shapes are re-declared here rather than imported.
type sloDoc struct {
	SampleEvery  uint64 `json:"sample_every"`
	Recorded     uint64 `json:"recorded"`
	LookupsTotal uint64 `json:"lookups_total"`
	Windows      []struct {
		Window string  `json:"window"`
		SpanMs int64   `json:"span_ms"`
		Count  uint64  `json:"count"`
		P50Ns  float64 `json:"p50_ns"`
		P99Ns  float64 `json:"p99_ns"`
		P999Ns float64 `json:"p999_ns"`
		MeanNs float64 `json:"mean_ns"`
		MaxNs  uint64  `json:"max_ns"`
	} `json:"windows"`
	Shards []struct {
		Shard       int     `json:"shard"`
		Drift       float64 `json:"drift"`
		ProbeBound  int     `json:"probe_bound"`
		HotnessSkew float64 `json:"hotness_skew"`
	} `json:"shards"`
}

// slowDoc mirrors the /debug/slow response.
type slowDoc struct {
	Records []struct {
		When     string           `json:"when"`
		Key      string           `json:"key"`
		Shard    int32            `json:"shard"`
		TotalNs  int64            `json:"total_ns"`
		StagesNs map[string]int64 `json:"stages_ns"`
		Probes   int32            `json:"probes"`
		Cache    string           `json:"cache,omitempty"`
	} `json:"records"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "lpmserve base URL")
	interval := flag.Duration("interval", time.Second, "poll interval")
	slowN := flag.Int("slow", 5, "slow-query rows to show (0 = hide)")
	once := flag.Bool("once", false, "print one snapshot and exit (no screen clearing)")
	flag.Parse()

	client := &http.Client{Timeout: 5 * time.Second}
	var prevLookups uint64
	var prevAt time.Time
	for {
		var b strings.Builder
		slo, err := fetchSLO(client, *addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lpmtop: %v\n", err)
			os.Exit(1)
		}
		now := time.Now()
		qps := -1.0
		if !prevAt.IsZero() && slo.LookupsTotal >= prevLookups {
			if dt := now.Sub(prevAt).Seconds(); dt > 0 {
				qps = float64(slo.LookupsTotal-prevLookups) / dt
			}
		}
		prevLookups, prevAt = slo.LookupsTotal, now

		render(&b, *addr, slo, qps)
		if *slowN > 0 {
			if slow, err := fetchSlow(client, *addr, *slowN); err == nil {
				renderSlow(&b, slow)
			}
		}

		if *once {
			os.Stdout.WriteString(b.String())
			return
		}
		// Home + clear-to-end repaint: no flicker, no scrollback spam.
		os.Stdout.WriteString("\x1b[H\x1b[2J" + b.String())
		time.Sleep(*interval)
	}
}

func fetchSLO(c *http.Client, base string) (*sloDoc, error) {
	var doc sloDoc
	if err := getJSON(c, base+"/slo", &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

func fetchSlow(c *http.Client, base string, n int) (*slowDoc, error) {
	var doc slowDoc
	if err := getJSON(c, fmt.Sprintf("%s/debug/slow?n=%d", base, n), &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

func getJSON(c *http.Client, url string, out any) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func render(b *strings.Builder, addr string, slo *sloDoc, qps float64) {
	fmt.Fprintf(b, "lpmtop — %s — %s\n", addr, time.Now().Format("15:04:05"))
	fmt.Fprintf(b, "lookups %s   qps %s   sampled 1:%d (%s records)\n\n",
		comma(slo.LookupsTotal), fmtQPS(qps), slo.SampleEvery, comma(slo.Recorded))

	fmt.Fprintf(b, "%-6s %9s %8s %10s %10s %10s %10s %10s\n",
		"WINDOW", "SPAN", "SAMPLES", "P50", "P99", "P999", "MEAN", "MAX")
	for _, w := range slo.Windows {
		span := "boot"
		if w.SpanMs > 0 {
			span = (time.Duration(w.SpanMs) * time.Millisecond).Round(100 * time.Millisecond).String()
		}
		fmt.Fprintf(b, "%-6s %9s %8s %10s %10s %10s %10s %10s\n",
			w.Window, span, comma(w.Count),
			fmtNs(w.P50Ns), fmtNs(w.P99Ns), fmtNs(w.P999Ns),
			fmtNs(w.MeanNs), fmtNs(float64(w.MaxNs)))
	}

	if len(slo.Shards) > 0 {
		shards := slo.Shards
		sort.Slice(shards, func(i, j int) bool { return shards[i].Shard < shards[j].Shard })
		fmt.Fprintf(b, "\n%-6s %8s %8s %8s  %s\n", "SHARD", "DRIFT", "BOUND", "SKEW", "")
		for _, sh := range shards {
			warn := ""
			if sh.Drift >= 0.75 {
				// ≥ 75% of the probe bound consumed: the model is drifting
				// toward its static ceiling — retrain soon (DESIGN.md §13).
				warn = "  ← drift: consider retrain"
			}
			fmt.Fprintf(b, "%-6d %8.2f %8d %8.2f%s\n",
				sh.Shard, sh.Drift, sh.ProbeBound, sh.HotnessSkew, warn)
		}
	}
}

func renderSlow(b *strings.Builder, slow *slowDoc) {
	if len(slow.Records) == 0 {
		return
	}
	fmt.Fprintf(b, "\n%-12s %-18s %6s %10s %7s  %s\n",
		"WHEN", "KEY", "SHARD", "TOTAL", "PROBES", "STAGES")
	for _, r := range slow.Records {
		when := r.When
		if t, err := time.Parse(time.RFC3339Nano, r.When); err == nil {
			when = t.Local().Format("15:04:05.000")
		}
		fmt.Fprintf(b, "%-12s %-18s %6d %10s %7d  %s\n",
			when, clip(r.Key, 18), r.Shard, fmtNs(float64(r.TotalNs)), r.Probes, stages(r.StagesNs, r.Cache))
	}
}

// stages renders the per-stage nanosecond map compactly, in pipeline order.
func stages(m map[string]int64, cache string) string {
	order := []string{"lcache-probe", "inference", "secondary-search", "bucket-fetch"}
	var parts []string
	if cache != "" {
		parts = append(parts, "cache="+cache)
	}
	for _, st := range order {
		if ns, ok := m[st]; ok {
			parts = append(parts, fmt.Sprintf("%s=%s", st, fmtNs(float64(ns))))
		}
	}
	return strings.Join(parts, " ")
}

func fmtNs(ns float64) string {
	switch {
	case ns <= 0:
		return "-"
	case ns < 1e3:
		return fmt.Sprintf("%.0fns", ns)
	case ns < 1e6:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	case ns < 1e9:
		return fmt.Sprintf("%.2fms", ns/1e6)
	default:
		return fmt.Sprintf("%.2fs", ns/1e9)
	}
}

func fmtQPS(qps float64) string {
	switch {
	case qps < 0:
		return "—" // needs two polls
	case qps < 1e3:
		return fmt.Sprintf("%.0f", qps)
	case qps < 1e6:
		return fmt.Sprintf("%.1fk", qps/1e3)
	default:
		return fmt.Sprintf("%.2fM", qps/1e6)
	}
}

// comma renders n with thousands separators.
func comma(n uint64) string {
	s := fmt.Sprint(n)
	for i := len(s) - 3; i > 0; i -= 3 {
		s = s[:i] + "," + s[i:]
	}
	return s
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
