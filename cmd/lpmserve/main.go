// Command lpmserve is the NeuroLPM serving daemon: it builds (or loads) an
// engine for a rule-set and serves lookups over HTTP alongside the full
// observability surface — Prometheus-format /metrics backed by the
// telemetry registry, expvar at /debug/vars, /debug/pprof, and per-query
// traces at /trace?key=.
//
// Usage:
//
//	lpmserve -rules rules.txt -width 32 [-bucket 8] [-model model.bin]
//	         [-addr :8080] [-sram MB]
//
// Endpoints:
//
//	GET /lookup?key=10.1.2.3     one query (JSON)
//	GET /trace?key=10.1.2.3      one fully-annotated query span (JSON)
//	GET /metrics                 Prometheus text format
//	GET /healthz                 engine summary
//	GET /debug/vars              expvar (includes the "neurolpm" registry)
//	GET /debug/pprof/...         CPU/heap/goroutine profiles
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"neurolpm/internal/cachesim"
	"neurolpm/internal/core"
	"neurolpm/internal/lpm"
	"neurolpm/internal/rqrmi"
	"neurolpm/internal/serve"
	"neurolpm/internal/telemetry"
)

func main() {
	rulesPath := flag.String("rules", "", "rule-set file (required)")
	width := flag.Int("width", 32, "key bit width")
	bucket := flag.Int("bucket", 8, "ranges per bucket; 0 = SRAM-only")
	modelPath := flag.String("model", "", "model file from lpmtrain (skips training)")
	addr := flag.String("addr", ":8080", "HTTP listen address")
	sramMB := flag.Int("sram", 0, "emulate a cache of this many MB in front of DRAM (0 = uncached accounting)")
	verify := flag.Bool("verify", false, "verify the engine against the trie oracle before serving")
	flag.Parse()

	if *rulesPath == "" {
		fatal("-rules is required")
	}
	text, err := os.ReadFile(*rulesPath)
	if err != nil {
		fatal("%v", err)
	}
	rs, err := lpm.ParseRuleSet(*width, string(text))
	if err != nil {
		fatal("%v", err)
	}

	cfg := core.Config{BucketSize: *bucket, Model: rqrmi.DefaultConfig()}
	var eng *core.Engine
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			fatal("%v", err)
		}
		model, err := rqrmi.ReadModel(f)
		f.Close()
		if err != nil {
			fatal("%v", err)
		}
		eng, err = core.BuildWithModel(rs, cfg, model, false)
		if err != nil {
			fatal("%v", err)
		}
	} else {
		start := time.Now()
		eng, err = core.Build(rs, cfg)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "lpmserve: trained %d rules in %v (max err %d)\n",
			rs.Len(), time.Since(start).Round(time.Millisecond), eng.Model().MaxErr())
	}
	if *verify {
		if err := eng.Verify(); err != nil {
			fatal("verification failed: %v", err)
		}
		fmt.Fprintln(os.Stderr, "lpmserve: engine verified against the trie oracle")
	}

	srv := serve.New(eng, telemetry.Default)
	if *sramMB > 0 {
		budget := *sramMB*1024*1024 - eng.SRAMUsage().Total
		if budget <= 0 {
			fatal("SRAM budget of %dMB is below the engine's static footprint (%d bytes)",
				*sramMB, eng.SRAMUsage().Total)
		}
		cache, err := cachesim.New(cachesim.DefaultConfig(budget))
		if err != nil {
			fatal("%v", err)
		}
		srv.UseCache(cache)
	}

	u := eng.SRAMUsage()
	fmt.Fprintf(os.Stderr, "lpmserve: serving %d-bit LPM (%d ranges, %dB SRAM, bucketized=%v) on %s\n",
		*width, eng.Ranges().Len(), u.Total, eng.Bucketized(), *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lpmserve: "+format+"\n", args...)
	os.Exit(1)
}
