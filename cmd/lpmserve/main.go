// Command lpmserve is the NeuroLPM serving daemon: it builds (or loads) an
// engine for a rule-set and serves lookups over HTTP alongside the full
// observability surface — Prometheus-format /metrics backed by the
// telemetry registry, expvar at /debug/vars, /debug/pprof, and per-query
// traces at /trace?key=.
//
// Usage:
//
//	lpmserve -rules rules.txt -width 32 [-bucket 8] [-model model.bin]
//	         [-addr :8080] [-sram MB] [-shards N] [-autocommit 100ms]
//	         [-cache-bytes N] [-flight-sample N] [-inference compiled]
//	         [-cold-tier] [-tier-interval 1s]
//	         [-wire-addr :9090] [-coalesce-window 20µs]
//
// -wire-addr additionally serves the binary wire protocol (DESIGN.md §17)
// on a second listener: length-prefixed frames over persistent TCP, no JSON
// on the hot path, with single-key lookups from different connections
// coalesced into one batch-plane call within -coalesce-window (the window
// adapts down to zero under light load, so a lone client keeps its p50).
// Drive it with cmd/lpmload; one SIGINT/SIGTERM drains both listeners.
//
// -cold-tier enables the two-tier bucket store (DESIGN.md §16): a background
// rebalancer demotes buckets the hotness sketch stopped seeing to a simulated
// slow tier and promotes them back on access bursts, keeping the fast tier's
// footprint proportional to the working set instead of the rule count.
// /metrics reports residency (neurolpm_tier_resident_buckets,
// neurolpm_tier_fast_bytes) and migration/cold-fetch counters
// (neurolpm_tier_{promotions,demotions,cold_fetches}_total).
//
// -inference selects the arithmetic every query endpoint routes through:
// "compiled" (default; the flat float32 plane), "quantized" (the int32
// fixed-point shift-add plane, DESIGN.md §15 — same answers, smaller
// coefficient bank), or "reference" (the Model's pointer-walking float path,
// for differential debugging). /trace labels the inference stage after the
// selected arm, so a span from a quantized server shows "quantized-inference".
//
// -cache-bytes N puts an epoch-invalidated hot-key result cache (DESIGN.md
// §12) in front of the lookup pipeline: repeated keys answer from a
// set-associative result array, and every rule-table update invalidates the
// whole plane by bumping an epoch. /lookup and /trace report the per-query
// outcome in a "cache" field; 0 disables the plane entirely.
//
// With -shards N the rule-set is partitioned by top key bits into N
// independent sub-engines (the paper's §6 bank-parallel pipeline); /batch
// fans a whole key batch out across them, and a background committer folds
// inserts into the dirty shard's engine without blocking readers.
//
// Endpoints:
//
//	GET /lookup?key=10.1.2.3     one query (JSON)
//	GET /batch?keys=a,b,c        many queries, one round-trip (also POST JSON)
//	POST /update                 one rule update (sharded mode; 429 = back off)
//	GET /trace?key=10.1.2.3      one fully-annotated query span (JSON)
//	GET /metrics                 Prometheus text format
//	GET /healthz                 engine summary + per-shard health; 503 once a
//	                             shard has been failing past -stale-budget
//	GET /slo                     windowed tail-latency quantiles + per-shard
//	                             drift/hotness (lpmtop's poll target)
//	GET /debug/flightrec         the sampled flight-record ring (?n=)
//	GET /debug/slow              the worst-N slow-query log (?n=)
//	GET /debug/hotness           a shard's hottest buckets (?shard=&n=)
//	GET /debug/vars              expvar (includes the "neurolpm" registry)
//	GET /debug/pprof/...         CPU/heap/goroutine profiles
//
// -flight-sample N routes 1 in N queries (N rounded to a power of two)
// through the flight recorder, stamping per-stage latencies into a fixed
// ring; 0 disables sampling. The default (256) costs under 2% at paper
// scale (experiment E26).
//
// The daemon stops on SIGINT/SIGTERM: the listener closes immediately and
// in-flight requests drain (bounded by -drain) before the process exits.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"neurolpm/internal/cachesim"
	"neurolpm/internal/core"
	"neurolpm/internal/lpm"
	"neurolpm/internal/plane"
	"neurolpm/internal/rqrmi"
	"neurolpm/internal/serve"
	"neurolpm/internal/shard"
	"neurolpm/internal/telemetry"
	"neurolpm/internal/tier"
)

func main() {
	rulesPath := flag.String("rules", "", "rule-set file (required)")
	width := flag.Int("width", 32, "key bit width")
	bucket := flag.Int("bucket", 8, "ranges per bucket; 0 = SRAM-only")
	modelPath := flag.String("model", "", "model file from lpmtrain (skips training; single-engine only)")
	addr := flag.String("addr", ":8080", "HTTP listen address")
	sramMB := flag.Int("sram", 0, "emulate a cache of this many MB in front of DRAM (0 = uncached accounting)")
	verify := flag.Bool("verify", false, "verify the engine against the trie oracle before serving")
	shards := flag.Int("shards", 0, "partition the rule-set into this many sub-engines (power of two; 0 = single engine)")
	autocommit := flag.Duration("autocommit", 100*time.Millisecond, "background commit interval for dirty shards (requires -shards)")
	staleBudget := flag.Duration("stale-budget", shard.DefaultStaleBudget, "how long a shard may keep failing commits before /healthz reports it stale (503)")
	drain := flag.Duration("drain", serve.DefaultDrainTimeout, "how long to let in-flight requests finish on SIGINT/SIGTERM")
	cacheBytes := flag.Int("cache-bytes", 0, "hot-key result cache size in bytes per worker (0 = off)")
	flightSample := flag.Uint64("flight-sample", telemetry.DefaultSampleEvery, "flight-recorder sampling rate: time 1 in N queries through the stage stack (rounded to a power of two; 0 = off)")
	inference := flag.String("inference", "compiled", "inference plane: compiled, reference or quantized")
	coldTier := flag.Bool("cold-tier", false, "enable the two-tier bucket store: cold buckets demote to a simulated slow tier, a background rebalancer migrates on hotness (DESIGN.md §16)")
	tierInterval := flag.Duration("tier-interval", time.Second, "tier rebalance interval (requires -cold-tier)")
	wireAddr := flag.String("wire-addr", "", "also serve the binary wire protocol on this address (DESIGN.md §17; empty = HTTP only)")
	coalesceWindow := flag.Duration("coalesce-window", serve.DefaultCoalesceWindow, "max time the wire coalescer gathers cross-connection lookups into one batch (requires -wire-addr; shrinks adaptively under light load)")
	flag.Parse()

	if *rulesPath == "" {
		fatal("-rules is required")
	}
	text, err := os.ReadFile(*rulesPath)
	if err != nil {
		fatal("%v", err)
	}
	rs, err := lpm.ParseRuleSet(*width, string(text))
	if err != nil {
		fatal("%v", err)
	}

	cfg := core.Config{BucketSize: *bucket, Model: rqrmi.DefaultConfig()}
	if *coldTier {
		if *bucket < 2 || rs.Width > 64 {
			fatal("-cold-tier needs a bucketized engine of width ≤ 64 (-bucket ≥ 2)")
		}
		cfg.Tier = tier.Config{Enabled: true}
	}
	var srv *serve.Server
	var sh *shard.ShardedUpdatable
	if *shards > 0 {
		srv, sh = buildSharded(rs, cfg, *shards, *autocommit, *staleBudget, *modelPath, *sramMB, *verify)
	} else {
		srv = buildSingle(rs, cfg, *modelPath, *sramMB, *verify)
	}
	inf, err := plane.ParseInference(*inference)
	if err != nil {
		fatal("%v", err)
	}
	if inf != plane.Compiled {
		srv.UseInference(inf)
		fmt.Fprintf(os.Stderr, "lpmserve: serving through the %s inference plane\n", inf)
	}
	if *cacheBytes > 0 {
		srv.UseResultCache(*cacheBytes)
		fmt.Fprintf(os.Stderr, "lpmserve: hot-key result cache enabled (%d bytes per worker)\n", *cacheBytes)
	}
	if *coldTier {
		srv.StartTierRebalancer(*tierInterval)
		srv.SetInfo("cold_tier", "1")
		fmt.Fprintf(os.Stderr, "lpmserve: cold tier enabled, rebalancing every %v\n", *tierInterval)
	}
	telemetry.Flight.SetSampleEvery(*flightSample)
	srv.SetInfo("rules", fmt.Sprint(rs.Len()))
	srv.SetInfo("width", fmt.Sprint(rs.Width))
	srv.SetInfo("flight_sample", fmt.Sprint(telemetry.Flight.SampleEvery()))

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("%v", err)
	}
	units := []serve.Unit{&serve.HTTPUnit{Listener: l, Handler: srv.Handler()}}
	if *wireAddr != "" {
		wl, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			fatal("%v", err)
		}
		units = append(units, serve.NewWireServer(srv, wl, *coalesceWindow))
		srv.SetInfo("wire", "1")
		fmt.Fprintf(os.Stderr, "lpmserve: wire protocol on %s (coalesce window %v)\n", wl.Addr(), *coalesceWindow)
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	fmt.Fprintf(os.Stderr, "lpmserve: listening on %s\n", l.Addr())
	if err := serve.ServeUnits(stop, *drain, units...); err != nil {
		fatal("%v", err)
	}
	if sh != nil {
		// A shard that never managed to commit its pending updates is an
		// operator-visible failure, not a silent shutdown.
		if err := sh.Close(); err != nil {
			fatal("%v", err)
		}
	}
	fmt.Fprintln(os.Stderr, "lpmserve: drained, shutting down")
}

// buildSingle trains (or loads) one engine over the whole rule-set.
func buildSingle(rs *lpm.RuleSet, cfg core.Config, modelPath string, sramMB int, verify bool) *serve.Server {
	var eng *core.Engine
	var err error
	if modelPath != "" {
		f, err := os.Open(modelPath)
		if err != nil {
			fatal("%v", err)
		}
		model, err := rqrmi.ReadModel(f)
		f.Close()
		if err != nil {
			fatal("%v", err)
		}
		eng, err = core.BuildWithModel(rs, cfg, model, false)
		if err != nil {
			fatal("%v", err)
		}
	} else {
		start := time.Now()
		eng, err = core.Build(rs, cfg)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "lpmserve: trained %d rules in %v (max err %d)\n",
			rs.Len(), time.Since(start).Round(time.Millisecond), eng.Model().MaxErr())
	}
	if verify {
		if err := eng.Verify(); err != nil {
			fatal("verification failed: %v", err)
		}
		fmt.Fprintln(os.Stderr, "lpmserve: engine verified against the trie oracle")
	}

	srv := serve.New(eng, telemetry.Default)
	if sramMB > 0 {
		budget := sramMB*1024*1024 - eng.SRAMUsage().Total
		if budget <= 0 {
			fatal("SRAM budget of %dMB is below the engine's static footprint (%d bytes)",
				sramMB, eng.SRAMUsage().Total)
		}
		cache, err := cachesim.New(cachesim.DefaultConfig(budget))
		if err != nil {
			fatal("%v", err)
		}
		srv.UseCache(cache)
	}

	u := eng.SRAMUsage()
	fmt.Fprintf(os.Stderr, "lpmserve: serving %d-bit LPM (%d ranges, %dB SRAM, bucketized=%v)\n",
		rs.Width, eng.Ranges().Len(), u.Total, eng.Bucketized())
	return srv
}

// buildSharded partitions the rule-set and starts the background committer.
func buildSharded(rs *lpm.RuleSet, cfg core.Config, nShards int, autocommit, staleBudget time.Duration, modelPath string, sramMB int, verify bool) (*serve.Server, *shard.ShardedUpdatable) {
	if modelPath != "" {
		fatal("-model is incompatible with -shards: each shard trains its own model")
	}
	if sramMB > 0 {
		fmt.Fprintln(os.Stderr, "lpmserve: warning: -sram cache emulation is single-engine only; ignoring it in sharded mode")
	}
	start := time.Now()
	sh, err := shard.BuildUpdatable(rs, cfg, nShards, 0)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "lpmserve: trained %d rules across %d shards in %v\n",
		rs.Len(), nShards, time.Since(start).Round(time.Millisecond))
	if verify {
		if err := sh.Verify(); err != nil {
			fatal("verification failed: %v", err)
		}
		fmt.Fprintln(os.Stderr, "lpmserve: all shards verified against the trie oracle")
	}
	sh.SetStaleBudget(staleBudget)
	if autocommit > 0 {
		sh.StartAutoCommit(autocommit, 0)
		fmt.Fprintf(os.Stderr, "lpmserve: background commit every %v (stale budget %v)\n",
			autocommit, sh.StaleBudget())
	}
	fmt.Fprintf(os.Stderr, "lpmserve: serving %d-bit LPM over %d shards\n", rs.Width, nShards)
	return serve.NewSharded(sh, telemetry.Default), sh
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lpmserve: "+format+"\n", args...)
	os.Exit(1)
}
