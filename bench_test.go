package neurolpm_test

// One testing.B benchmark per paper table/figure (DESIGN.md experiment
// index). Each delegates to internal/experiments at a reduced scale so that
// `go test -bench=.` finishes in minutes; `cmd/lpmbench -full` regenerates
// everything at paper scale. The measured quantity of each figure is
// reported as a benchmark metric alongside the wall time of regenerating it.

import (
	"testing"

	"neurolpm/internal/experiments"
	"neurolpm/internal/rqrmi"
)

func benchScale() experiments.Scale {
	m := rqrmi.DefaultConfig()
	m.StageWidths = []int{1, 4, 32}
	m.Samples = 1024
	m.Epochs = 25
	m.MaxRounds = 2
	return experiments.Scale{
		Rules: map[string]int{
			"ripe": 30000, "routeviews": 30000, "stanford": 12000,
			"snort": 12000, "ipv6": 6000,
		},
		TraceLen:   200000,
		HWTraceLen: 15000,
		Model:      m,
		Seed:       1,
	}
}

func BenchmarkFig2PrefixDistribution(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.RoutingTop), "routing-mode-bits")
		b.ReportMetric(float64(res.StringSpan), "string-distinct-lengths")
	}
}

func BenchmarkFig6aBankThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig6a(1)
		// Report the paper's sizing anchor: T(16 banks, 16 FSMs) ≈ 10.
		for _, p := range pts {
			if p.Banks == 16 && p.FSMs == 15 {
				b.ReportMetric(p.Analytical, "T(16,15)")
			}
		}
	}
}

func BenchmarkFig6bTrainingTradeoff(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6b(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].TrainParallel.Milliseconds()), "train-e6-ms")
		b.ReportMetric(rows[0].Throughput, "tput-e6-q/cyc")
	}
}

func BenchmarkFig7DRAMBandwidth(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Fig7(sc)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Family == "ripe" && c.SRAMBytes == 2*1024*1024 && c.Ran {
				switch c.Algorithm {
				case "neurolpm":
					b.ReportMetric(c.BytesPerQuery, "neurolpm-B/q")
				case "treebitmap":
					b.ReportMetric(c.BytesPerQuery, "treebitmap-B/q")
				}
			}
		}
	}
}

func BenchmarkFig8HardwareThroughput(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8(sc)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Family == "ripe" && r.Config.Engines == 2 && r.Config.FSMs == 96 {
				b.ReportMetric(r.MppsAt100M, "Mpps@100MHz")
			}
		}
	}
}

func BenchmarkFig9LatencyCDF(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig9(sc)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Family == "ripe" && r.Config.FSMs == 96 {
				b.ReportMetric(float64(r.Latencies[2]), "p50-cycles")
			}
		}
	}
}

func BenchmarkFig10BucketSize(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Fig10(sc)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Family == "ripe" && c.BucketBytes == 32 && c.Ran {
				b.ReportMetric(c.MissRatePct, "ripe-32B-miss%")
			}
		}
	}
}

func BenchmarkTable1Resources(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[2].BRAMBytes)/float64(rows[0].BRAMBytes), "sail/neurolpm-BRAM")
	}
}

func BenchmarkExpansion(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Expansion(sc)
		if err != nil {
			b.Fatal(err)
		}
		avg := 0.0
		for _, r := range rows {
			avg += r.ExpansionPct
		}
		b.ReportMetric(avg/float64(len(rows)), "avg-expansion-%")
	}
}

func BenchmarkWorstCaseAccesses(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.WorstCase(sc)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Algorithm == "neurolpm" {
				b.ReportMetric(float64(r.Bound), "neurolpm-worst-acc")
			}
		}
	}
}

func BenchmarkVsBinarySearch(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.VsBinarySearch(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Reduction, "ripe-reduction-x")
	}
}

func BenchmarkBitwidthScaling(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Bitwidth(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[len(rows)-1].TrieDRAM), "trie-128bit-acc")
	}
}

func BenchmarkUpdates(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Updates(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[2].Duration.Milliseconds()), "insert-retrain-ms")
	}
}

func BenchmarkScalingTradeoff(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Scaling(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].TputVsBase, "4.5x-same-model-tput")
	}
}

func BenchmarkHeadlineThroughput(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Headline(sc)
		if err != nil {
			b.Fatal(err)
		}
		avg := 0.0
		for _, r := range rows {
			avg += r.MppsAt100M
		}
		b.ReportMetric(avg/float64(len(rows)), "avg-Mpps@100MHz")
	}
}

func BenchmarkModelSizeAblation(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ModelSize(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].AvgProbes, "probes-8sub")
		b.ReportMetric(rows[len(rows)-1].AvgProbes, "probes-128sub")
	}
}

func BenchmarkTSSSensitivity(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TSSSensitivity(sc)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Family == "snort" {
				b.ReportMetric(float64(r.Tables), "snort-tables")
			}
		}
	}
}

func BenchmarkDRAMPipeline(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.DRAMPipeline(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Throughput, "tput-1issue")
	}
}
