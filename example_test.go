package neurolpm_test

import (
	"fmt"
	"net/netip"

	"neurolpm"
)

// smallModel keeps the documentation examples fast; production code should
// keep DefaultConfig (the paper's 1/4/64 model).
func smallModel() neurolpm.Config {
	cfg := neurolpm.SRAMOnlyConfig()
	cfg.Model.StageWidths = []int{1, 2, 8}
	cfg.Model.Samples = 512
	cfg.Model.Epochs = 20
	return cfg
}

// ExampleBuild shows the minimal routing workflow: CIDR rules in, exact
// longest-prefix lookups out.
func ExampleBuild() {
	var rules []neurolpm.Rule
	for _, e := range []struct {
		cidr string
		port uint64
	}{
		{"10.0.0.0/8", 1},
		{"10.1.0.0/16", 2},
	} {
		r, err := neurolpm.IPv4Rule(e.cidr, e.port)
		if err != nil {
			panic(err)
		}
		rules = append(rules, r)
	}
	rs, err := neurolpm.NewRuleSet(32, rules)
	if err != nil {
		panic(err)
	}
	engine, err := neurolpm.Build(rs, smallModel())
	if err != nil {
		panic(err)
	}
	port, ok := engine.Lookup(neurolpm.IPv4Key(netip.MustParseAddr("10.1.2.3")))
	fmt.Println(port, ok)
	port, ok = engine.Lookup(neurolpm.IPv4Key(netip.MustParseAddr("10.9.9.9")))
	fmt.Println(port, ok)
	// Output:
	// 2 true
	// 1 true
}

// ExamplePrefixCover turns an arbitrary key interval into LPM rules — the
// encoding used by the clustering and load-balancing applications.
func ExamplePrefixCover() {
	rules, err := neurolpm.PrefixCover(8,
		neurolpm.KeyFromUint64(3), neurolpm.KeyFromUint64(12), 7)
	if err != nil {
		panic(err)
	}
	for _, r := range rules {
		fmt.Printf("%s/%d\n", r.Prefix, r.Len)
	}
	// Output:
	// 0x3/8
	// 0x4/6
	// 0x8/6
	// 0xc/8
}

// ExampleNewUpdatable demonstrates the §6.5 update flow: immediate
// insertion through the delta buffer, then an atomic retraining commit.
func ExampleNewUpdatable() {
	r, _ := neurolpm.IPv4Rule("10.0.0.0/8", 1)
	rs, _ := neurolpm.NewRuleSet(32, []neurolpm.Rule{r})
	engine, err := neurolpm.Build(rs, smallModel())
	if err != nil {
		panic(err)
	}
	u := neurolpm.NewUpdatable(engine, 0)

	insert, _ := neurolpm.IPv4Rule("10.1.0.0/16", 2)
	if err := u.Insert(insert); err != nil {
		panic(err)
	}
	// Visible immediately, before any retraining.
	port, _ := u.Lookup(neurolpm.IPv4Key(netip.MustParseAddr("10.1.2.3")))
	fmt.Println("before commit:", port)

	if err := u.Commit(); err != nil { // retrain + atomic swap
		panic(err)
	}
	port, _ = u.Lookup(neurolpm.IPv4Key(netip.MustParseAddr("10.1.2.3")))
	fmt.Println("after commit:", port, "pending:", u.PendingInserts())
	// Output:
	// before commit: 2
	// after commit: 2 pending: 0
}

// ExampleIPv6Rule shows 128-bit keys: nothing changes but the width.
func ExampleIPv6Rule() {
	r, err := neurolpm.IPv6Rule("2001:db8::/32", 9)
	if err != nil {
		panic(err)
	}
	rs, _ := neurolpm.NewRuleSet(128, []neurolpm.Rule{r})
	engine, err := neurolpm.Build(rs, smallModel())
	if err != nil {
		panic(err)
	}
	action, ok := engine.Lookup(neurolpm.IPv6Key(netip.MustParseAddr("2001:db8::1")))
	fmt.Println(action, ok)
	// Output:
	// 9 true
}
