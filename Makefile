# NeuroLPM reproduction — stdlib-only Go. `make ci` mirrors the GitHub
# Actions pipeline (.github/workflows/ci.yml).

GO ?= go

.PHONY: build vet test race bench bench-smoke bench-json bench-guard slo smoke faults fuzz loadtest ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Every benchmark compiled and run exactly once: catches bit-rotted
# benchmark code without paying for stable measurements.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# The PR-over-PR perf record: quick-scale experiment tables plus the
# reference/compiled/batched/sharded lookup microbenchmarks as JSON.
# -compact keeps the committed file diffable (no timestamps, one line per
# table row).
bench-json:
	$(GO) run ./cmd/lpmbench -json BENCH_PR10.json -compact

# The flight-recorder & SLO plane experiment (E26): sampling overhead,
# quantile fidelity, drift and hotness sanity (DESIGN.md §13).
slo:
	$(GO) run ./cmd/lpmbench -exp observe

# One fast end-to-end experiment plus the machine-readable report.
smoke:
	$(GO) run ./cmd/lpmbench -exp headline -json bench.json

# The E24 retrain-failure storm: lookup latency + correctness while every
# background commit fails, then exactly-once recovery (DESIGN.md §11).
faults:
	$(GO) run ./cmd/lpmbench -exp faults

# Mirrors CI's race-and-fuzz job: race the concurrent packages, then give
# each differential fuzz target a short budget. FuzzStackVsOracle is the
# parameterized lookup-plane matrix target (DESIGN.md §14): one harness
# covering {single,sharded} × {reference,compiled} × {cached,uncached} plus
# update interleavings and injected commit failures.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -race ./internal/core ./internal/shard ./internal/serve ./internal/telemetry ./internal/planetest ./internal/wire ./internal/load
	$(GO) test -run xxx -fuzz FuzzParseRule -fuzztime $(FUZZTIME) ./internal/lpm
	$(GO) test -run xxx -fuzz FuzzPrefixCoverBounds -fuzztime $(FUZZTIME) ./internal/lpm
	$(GO) test -run xxx -fuzz FuzzReadModel -fuzztime $(FUZZTIME) ./internal/rqrmi
	$(GO) test -run xxx -fuzz FuzzCompiledVsModel -fuzztime $(FUZZTIME) ./internal/rqrmi
	$(GO) test -run xxx -fuzz FuzzQuantizedVsModel -fuzztime $(FUZZTIME) ./internal/rqrmi
	$(GO) test -run xxx -fuzz FuzzStackVsOracle -fuzztime $(FUZZTIME) ./internal/planetest
	$(GO) test -run xxx -fuzz FuzzWireCodec -fuzztime $(FUZZTIME) ./internal/wire

# The lpmload CI smoke (DESIGN.md §17): a 2s open-loop wire run with a live
# update stream against an in-process WireServer must complete ≥ 90% of the
# offered rate with zero errors and zero oracle mismatches.
loadtest:
	$(GO) test -run TestLoadSmoke -v -count=1 ./internal/load

# E23 + E25 + E28 + E29 quick on the unified stack, compared against the
# committed baseline: any ratio regressing by more than 3% fails.
bench-guard:
	$(GO) run ./cmd/lpmbench -guard BENCH_PR10.json

ci: build vet race smoke bench-smoke bench-guard loadtest slo
	$(GO) test -run xxx -bench 'BenchmarkLookup(Instrumented|Seed)$$' -benchtime 1s ./internal/core/
