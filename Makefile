# NeuroLPM reproduction — stdlib-only Go. `make ci` mirrors the GitHub
# Actions pipeline (.github/workflows/ci.yml).

GO ?= go

.PHONY: build vet test race bench smoke ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One fast end-to-end experiment plus the machine-readable report.
smoke:
	$(GO) run ./cmd/lpmbench -exp headline -json bench.json

ci: build vet race smoke
	$(GO) test -run xxx -bench 'BenchmarkLookup(Instrumented|Seed)$$' -benchtime 1s ./internal/core/
