module neurolpm

go 1.23
