// Package neurolpm is a library implementation of NeuroLPM (Rashelbach, de
// Paula, Silberstein — MICRO 2023): a multi-purpose Longest Prefix Match
// engine that replaces trie traversals and hash-table probes with inference
// in an RQRMI learned index.
//
// A query runs in three steps (paper Fig 3): the key is fed to a tiny
// hierarchy of compiled piecewise-linear submodels, which yields an index
// estimate plus a guaranteed error bound; a bounded binary search over the
// SRAM-resident RQ Array resolves the true entry; for rule-sets too large
// for SRAM, a single DRAM bucket fetch completes the match. Results are
// always exact — identical to a classic trie lookup — because error bounds
// are computed analytically against the deployed inference arithmetic.
//
// Quick start:
//
//	rules := []neurolpm.Rule{ ... }
//	rs, _ := neurolpm.NewRuleSet(32, rules)
//	engine, _ := neurolpm.Build(rs, neurolpm.DefaultConfig())
//	action, ok := engine.Lookup(neurolpm.IPv4Key(netip.MustParseAddr("10.1.2.3")))
//
// The examples/ directory exercises routing (IPv4 and IPv6), string pattern
// matching, k-means-style clustering and weighted load balancing — the five
// application classes of the paper's §3.1.
package neurolpm

import (
	"fmt"
	"net/netip"

	"neurolpm/internal/core"
	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
	"neurolpm/internal/rqrmi"
)

// Key is an LPM query key of up to 128 bits.
type Key = keys.Value

// Rule is an LPM rule: the Len most significant bits of Prefix are fixed,
// the rest are wildcards; Action is any 64-bit value.
type Rule = lpm.Rule

// RuleSet is a validated collection of rules over a common bit width.
type RuleSet = lpm.RuleSet

// Engine is a built NeuroLPM engine. See core.Engine for the full method
// set: Lookup, LookupMem (with DRAM-traffic accounting), ModifyAction,
// Delete, InsertBatch, SRAMUsage, Verify.
type Engine = core.Engine

// Config configures an engine build: bucket size (0 = SRAM-only design) and
// RQRMI training parameters.
type Config = core.Config

// ModelConfig configures RQRMI training (stage widths, sampling, SGD, the
// straggler/error-bound tradeoffs of §6.5).
type ModelConfig = rqrmi.Config

// Matcher is the minimal query interface every engine and baseline
// implements.
type Matcher = lpm.Matcher

// Updatable wraps an Engine with a delta buffer for immediate insertions
// and atomic commit-by-retraining (§6.5). Create with NewUpdatable.
type Updatable = core.Updatable

// Chain evaluates several LPM tables sequentially — the policy-based
// routing pattern of App 2 (§3.1). Create with NewChain.
type Chain = core.Chain

// ChainStage is one table of a Chain.
type ChainStage = core.ChainStage

// NewRuleSet validates rules for a width-bit domain (1..128).
func NewRuleSet(width int, rules []Rule) (*RuleSet, error) {
	return lpm.NewRuleSet(width, rules)
}

// ParseRuleSet parses the textual rule format ("prefix/len action" lines).
func ParseRuleSet(width int, text string) (*RuleSet, error) {
	return lpm.ParseRuleSet(width, text)
}

// Build runs the offline preparation stage — LPM→range conversion, optional
// bucketization, RQRMI training — and returns a query-ready engine.
func Build(rs *RuleSet, cfg Config) (*Engine, error) {
	return core.Build(rs, cfg)
}

// DefaultConfig is the paper's evaluated configuration: 32-byte buckets and
// a 1/4/64 RQRMI model.
func DefaultConfig() Config { return core.DefaultConfig() }

// SRAMOnlyConfig disables bucketization: the whole range array is the RQ
// Array (the paper's §6 design).
func SRAMOnlyConfig() Config { return core.SRAMOnlyConfig() }

// DefaultModelConfig returns the 1/4/64 RQRMI training configuration.
func DefaultModelConfig() ModelConfig { return rqrmi.DefaultConfig() }

// NewUpdatable wraps a built engine with a delta buffer of the given
// capacity (≤ 0 selects the paper's 10K TCAM-equivalent default).
func NewUpdatable(e *Engine, capacity int) *Updatable {
	return core.NewUpdatable(e, capacity)
}

// NewChain builds a multi-table lookup chain.
func NewChain(stages ...ChainStage) (*Chain, error) {
	return core.NewChain(stages...)
}

// KeyFromUint64 builds a key from an unsigned integer.
func KeyFromUint64(v uint64) Key { return keys.FromUint64(v) }

// KeyFromParts builds a 128-bit key from two 64-bit limbs.
func KeyFromParts(hi, lo uint64) Key { return keys.FromParts(hi, lo) }

// IPv4Key converts an IPv4 address into a 32-bit LPM key.
func IPv4Key(addr netip.Addr) Key {
	b := addr.As4()
	return keys.FromUint64(uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3]))
}

// IPv6Key converts an IPv6 address into a 128-bit LPM key.
func IPv6Key(addr netip.Addr) Key {
	b := addr.As16()
	var hi, lo uint64
	for i := 0; i < 8; i++ {
		hi = hi<<8 | uint64(b[i])
		lo = lo<<8 | uint64(b[i+8])
	}
	return keys.FromParts(hi, lo)
}

// IPv4Rule builds a 32-bit rule from CIDR notation, e.g. "10.0.0.0/8".
func IPv4Rule(cidr string, action uint64) (Rule, error) {
	p, err := netip.ParsePrefix(cidr)
	if err != nil {
		return Rule{}, fmt.Errorf("neurolpm: %w", err)
	}
	if !p.Addr().Is4() {
		return Rule{}, fmt.Errorf("neurolpm: %q is not IPv4", cidr)
	}
	r := Rule{Prefix: IPv4Key(p.Masked().Addr()), Len: p.Bits(), Action: action}
	if err := r.Validate(32); err != nil {
		return Rule{}, err
	}
	return r, nil
}

// IPv6Rule builds a 128-bit rule from CIDR notation, e.g. "2001:db8::/32".
func IPv6Rule(cidr string, action uint64) (Rule, error) {
	p, err := netip.ParsePrefix(cidr)
	if err != nil {
		return Rule{}, fmt.Errorf("neurolpm: %w", err)
	}
	if !p.Addr().Is6() || p.Addr().Is4In6() {
		return Rule{}, fmt.Errorf("neurolpm: %q is not IPv6", cidr)
	}
	r := Rule{Prefix: IPv6Key(p.Masked().Addr()), Len: p.Bits(), Action: action}
	if err := r.Validate(128); err != nil {
		return Rule{}, err
	}
	return r, nil
}

// NewOracle builds the exact reference matcher (a unibit trie) for a
// rule-set — useful for validating engines and as a software fallback.
func NewOracle(rs *RuleSet) Matcher { return lpm.NewTrieMatcher(rs) }

// PrefixCover decomposes the inclusive key interval [lo, hi] of a width-bit
// domain into the minimal set of prefix rules covering exactly that
// interval. Range-shaped policies — clustering centroid cells, load-balancer
// weight slices (paper Apps 3 and 5) — are expressed as LPM rules this way.
func PrefixCover(width int, lo, hi Key, action uint64) ([]Rule, error) {
	return lpm.PrefixCover(width, lo, hi, action)
}
