package neurolpm

import (
	"math/rand"
	"net/netip"
	"testing"
)

func quickConfig() Config {
	cfg := SRAMOnlyConfig()
	cfg.Model.StageWidths = []int{1, 2, 8}
	cfg.Model.Samples = 512
	cfg.Model.Epochs = 20
	return cfg
}

func TestPublicAPIQuickstart(t *testing.T) {
	rules := []Rule{}
	for _, r := range []struct {
		cidr   string
		action uint64
	}{
		{"10.0.0.0/8", 1},
		{"10.1.0.0/16", 2},
		{"10.1.2.0/24", 3},
		{"192.168.0.0/16", 4},
	} {
		rule, err := IPv4Rule(r.cidr, r.action)
		if err != nil {
			t.Fatal(err)
		}
		rules = append(rules, rule)
	}
	rs, err := NewRuleSet(32, rules)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := Build(rs, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]uint64{
		"10.1.2.3":    3,
		"10.1.9.9":    2,
		"10.9.9.9":    1,
		"192.168.1.1": 4,
	}
	for addr, want := range cases {
		got, ok := engine.Lookup(IPv4Key(netip.MustParseAddr(addr)))
		if !ok || got != want {
			t.Errorf("%s -> %d,%v, want %d", addr, got, ok, want)
		}
	}
	if _, ok := engine.Lookup(IPv4Key(netip.MustParseAddr("8.8.8.8"))); ok {
		t.Error("8.8.8.8 should not match")
	}
}

func TestIPv6RoundTrip(t *testing.T) {
	r, err := IPv6Rule("2001:db8::/32", 7)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewRuleSet(128, []Rule{r})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := Build(rs, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, ok := engine.Lookup(IPv6Key(netip.MustParseAddr("2001:db8::1")))
	if !ok || got != 7 {
		t.Fatalf("lookup = %d,%v", got, ok)
	}
	if _, ok := engine.Lookup(IPv6Key(netip.MustParseAddr("2001:db9::1"))); ok {
		t.Fatal("2001:db9:: should not match")
	}
}

func TestIPv4RuleErrors(t *testing.T) {
	for _, cidr := range []string{"not-a-cidr", "2001:db8::/32", "10.0.0.0"} {
		if _, err := IPv4Rule(cidr, 1); err == nil {
			t.Errorf("IPv4Rule(%q) accepted", cidr)
		}
	}
}

func TestIPv6RuleErrors(t *testing.T) {
	for _, cidr := range []string{"10.0.0.0/8", "zzz", "::ffff:10.0.0.0/104"} {
		if _, err := IPv6Rule(cidr, 1); err == nil {
			t.Errorf("IPv6Rule(%q) accepted", cidr)
		}
	}
}

func TestParseRuleSetPublic(t *testing.T) {
	rs, err := ParseRuleSet(32, "0x0a000000/8 1\n0xc0a80000/16 2\n")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 2 {
		t.Fatalf("rules = %d", rs.Len())
	}
}

func TestOracleAgreesWithEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var rules []Rule
	seen := map[string]bool{}
	for len(rules) < 300 {
		length := 1 + rng.Intn(32)
		v := uint64(rng.Uint32())
		v = v >> (32 - length) << (32 - length)
		r := Rule{Prefix: KeyFromUint64(v), Len: length, Action: uint64(rng.Intn(100))}
		k := r.Prefix.String() + "/" + string(rune(length))
		if seen[k] {
			continue
		}
		seen[k] = true
		rules = append(rules, r)
	}
	rs, err := NewRuleSet(32, rules)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := Build(rs, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	oracle := NewOracle(rs)
	for q := 0; q < 5000; q++ {
		k := KeyFromUint64(uint64(rng.Uint32()))
		g1, ok1 := engine.Lookup(k)
		g2, ok2 := oracle.Lookup(k)
		if ok1 != ok2 || (ok1 && g1 != g2) {
			t.Fatalf("key %v: engine (%d,%v) oracle (%d,%v)", k, g1, ok1, g2, ok2)
		}
	}
}

func TestKeyFromParts(t *testing.T) {
	k := KeyFromParts(1, 2)
	if k.Hi != 1 || k.Lo != 2 {
		t.Fatalf("KeyFromParts = %+v", k)
	}
}
